//! # lsm-obs
//!
//! The observability substrate for lsm-lab: dependency-free, lock-free,
//! and cheap enough for the hottest paths.
//!
//! Three primitives:
//!
//! * [`Histogram`] — HDR-style log-bucketed latency histograms (fixed
//!   64×16 atomic layout, `p50/p90/p99/p999/max` queries, bucket-wise
//!   [`HistSnapshot::delta`]/[`HistSnapshot::merge`]).
//! * [`EventRing`] — a bounded lock-free ring of structured engine events
//!   ([`EventKind`]) with monotonic timestamps, drainable as JSONL and
//!   exportable as Chrome `trace_event` JSON.
//! * [`LevelGauge`] — instantaneous per-level tree-shape readings.
//!
//! The engine threads one [`ObsHandle`] (a cheap `Arc` clone) through
//! every layer; [`Observability`] selects whether it records. All state is
//! atomics — an `ObsHandle` never participates in the engine's lock
//! hierarchy, so instrumentation can sit anywhere without widening a
//! lock's scope or violating rank order.

pub mod clock;
mod event;
mod gauge;
mod hist;

pub use event::{
    current_tid, fault, fault_name, recovery_phase, recovery_phase_name, to_chrome_trace, to_jsonl,
    Event, EventKind, EventRing,
};
pub use gauge::{estimated_read_amp, merge_level_gauges, LevelGauge};
pub use hist::{HistSnapshot, Histogram, NUM_BUCKETS, SUB_BUCKETS};

use std::sync::Arc;

/// The latency surfaces the engine records, one histogram each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum HistKind {
    /// `Db::get` end-to-end latency.
    Get = 0,
    /// `Db::put` (and batch-write) end-to-end latency.
    Put = 1,
    /// `Db::delete`/`single_delete`/`delete_range` latency.
    Delete = 2,
    /// `Db::scan` iterator-construction latency.
    Scan = 3,
    /// Backend read-side calls (`read`, `len`, `get_meta`, `list_files`).
    BackendRead = 4,
    /// Backend write-side calls (`append`, `write_blob`, `put_meta`, ...).
    BackendAppend = 5,
    /// Backend `sync` calls.
    BackendSync = 6,
    /// Memtable flush duration.
    Flush = 7,
    /// Compaction execution duration.
    Compaction = 8,
    /// Compaction planning duration.
    CompactionPlan = 9,
    /// Value-log append duration.
    VlogAppend = 10,
    /// Value-log garbage-collection pass duration.
    VlogGc = 11,
    /// Operations per group commit (a count histogram, not a latency:
    /// quantiles read as group-size p50/p99).
    GroupSize = 12,
    /// Time a write spent queued in the commit pipeline, from enqueue to
    /// acknowledgement (leader hand-off + WAL wait).
    GroupWait = 13,
    /// Leader-side group flush duration: one WAL append, at most one sync,
    /// and every memtable apply for the whole group.
    GroupCommit = 14,
}

/// Number of [`HistKind`] surfaces.
pub const NUM_HISTS: usize = 15;

impl HistKind {
    /// Every kind, in index order.
    pub const ALL: [HistKind; NUM_HISTS] = [
        HistKind::Get,
        HistKind::Put,
        HistKind::Delete,
        HistKind::Scan,
        HistKind::BackendRead,
        HistKind::BackendAppend,
        HistKind::BackendSync,
        HistKind::Flush,
        HistKind::Compaction,
        HistKind::CompactionPlan,
        HistKind::VlogAppend,
        HistKind::VlogGc,
        HistKind::GroupSize,
        HistKind::GroupWait,
        HistKind::GroupCommit,
    ];

    /// Stable snake_case name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::Get => "get",
            HistKind::Put => "put",
            HistKind::Delete => "delete",
            HistKind::Scan => "scan",
            HistKind::BackendRead => "backend_read",
            HistKind::BackendAppend => "backend_append",
            HistKind::BackendSync => "backend_sync",
            HistKind::Flush => "flush",
            HistKind::Compaction => "compaction",
            HistKind::CompactionPlan => "compaction_plan",
            HistKind::VlogAppend => "vlog_append",
            HistKind::VlogGc => "vlog_gc",
            HistKind::GroupSize => "group_size",
            HistKind::GroupWait => "group_wait",
            HistKind::GroupCommit => "group_commit",
        }
    }

    /// Whether [`ObsHandle::timer`] samples this surface 1-in-[`FG_SAMPLE`]
    /// instead of timing every call. The four foreground operations are
    /// sub-microsecond on the fastest memtables, where two clock reads per
    /// op would dominate the op itself; everything else (I/O, flush,
    /// compaction, GC) runs at microsecond-to-millisecond scale and is
    /// timed exhaustively.
    pub fn sampled(self) -> bool {
        matches!(
            self,
            HistKind::Get | HistKind::Put | HistKind::Delete | HistKind::Scan
        )
    }
}

/// Sampling period for the foreground-operation histograms: one in this
/// many get/put/delete/scan calls is timed, recorded with this weight so
/// bucket counts still estimate true operation counts (see
/// [`Histogram::record_weighted`]). The commit pipeline's per-commit
/// bookkeeping (group size/wait/commit) samples at the same rate via
/// [`ObsHandle::fg_sample_weight`] — an uncontended commit is the same
/// sub-microsecond scale as the put it carries. Chosen so the recording
/// tax on a ~400 ns vector-memtable put stays a few percent even where
/// reading the clock costs tens of nanoseconds (virtualized TSC).
pub const FG_SAMPLE: u64 = 16;

thread_local! {
    /// Per-thread rotation for foreground sampling: deterministic within a
    /// thread, no shared cache line.
    static FG_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn fg_sample_due() -> bool {
    FG_TICK.with(|c| {
        let t = c.get().wrapping_add(1);
        c.set(t);
        t % FG_SAMPLE == 0
    })
}

/// Whether (and how) a `Db` records observability data.
#[derive(Clone, Debug, Default)]
pub enum Observability {
    /// Record histograms and events into a fresh handle (the default).
    #[default]
    On,
    /// Record nothing; every instrumentation call is a branch on a bool.
    Off,
    /// Record into a caller-provided handle (lets tests and harnesses
    /// share one trace across the engine and a `FaultBackend`).
    Shared(ObsHandle),
}

impl Observability {
    /// Resolves the configuration to a concrete handle.
    pub fn into_handle(self) -> ObsHandle {
        match self {
            Observability::On => ObsHandle::recording(),
            Observability::Off => ObsHandle::disabled(),
            Observability::Shared(h) => h,
        }
    }
}

/// Default event-ring capacity for [`Observability::On`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

struct Inner {
    enabled: bool,
    hists: [Histogram; NUM_HISTS],
    ring: EventRing,
}

/// The shared recording handle: clone freely (one `Arc` bump), record
/// from any thread. All operations are no-ops when built disabled.
#[derive(Clone)]
pub struct ObsHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHandle")
            .field("enabled", &self.inner.enabled)
            .field("events", &self.inner.ring.pushed())
            .finish()
    }
}

impl ObsHandle {
    /// A recording handle with the default event capacity. Warms the
    /// process clock so the first timed operation doesn't pay calibration.
    pub fn recording() -> ObsHandle {
        ObsHandle::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recording handle retaining the most recent `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> ObsHandle {
        clock::warm_up();
        ObsHandle {
            inner: Arc::new(Inner {
                enabled: true,
                hists: std::array::from_fn(|_| Histogram::new()),
                ring: EventRing::with_capacity(capacity),
            }),
        }
    }

    /// A handle that records nothing.
    pub fn disabled() -> ObsHandle {
        ObsHandle {
            inner: Arc::new(Inner {
                enabled: false,
                hists: std::array::from_fn(|_| Histogram::new()),
                ring: EventRing::with_capacity(8),
            }),
        }
    }

    /// Whether this handle records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Nanoseconds since the process clock origin (0 when disabled, so
    /// disabled handles never touch the clock).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        if self.inner.enabled {
            clock::now_nanos()
        } else {
            0
        }
    }

    /// Records a latency sample (nanoseconds) into `kind`'s histogram.
    #[inline]
    pub fn record(&self, kind: HistKind, nanos: u64) {
        if self.inner.enabled {
            self.inner.hists[kind as usize].record(nanos);
        }
    }

    /// One 1-in-[`FG_SAMPLE`] decision for a whole piece of per-commit
    /// bookkeeping: `Some(weight)` when this call should record (pass the
    /// weight to [`ObsHandle::record_weighted`]), `None` otherwise — and
    /// always `None` when disabled. Letting the caller branch once means
    /// unsampled commits skip not just the histogram writes but the
    /// timestamp reads that would feed them.
    #[inline]
    pub fn fg_sample_weight(&self) -> Option<u64> {
        if self.inner.enabled && fg_sample_due() {
            Some(FG_SAMPLE)
        } else {
            None
        }
    }

    /// Records one observed sample standing in for `weight` calls (pairs
    /// with [`ObsHandle::fg_sample_weight`]); quantiles are unchanged and
    /// `count` still estimates the true call count.
    #[inline]
    pub fn record_weighted(&self, kind: HistKind, value: u64, weight: u64) {
        if self.inner.enabled {
            self.inner.hists[kind as usize].record_weighted(value, weight);
        }
    }

    /// Starts an RAII timer that records into `kind` on drop. When the
    /// handle is disabled this is two branches and no clock read; on
    /// [sampled](HistKind::sampled) foreground surfaces only 1 in
    /// [`FG_SAMPLE`] calls reads the clock, recorded with matching weight.
    #[inline]
    pub fn timer(&self, kind: HistKind) -> OpTimer<'_> {
        let active = self.inner.enabled && (!kind.sampled() || fg_sample_due());
        OpTimer {
            obs: if active { Some(self) } else { None },
            kind,
            start: if active { clock::now_nanos() } else { 0 },
        }
    }

    /// Emits a structured event with the current timestamp and thread id.
    #[inline]
    pub fn emit(&self, kind: EventKind, level: Option<u32>, a: u64, b: u64) {
        if self.inner.enabled {
            self.inner
                .ring
                .push_at(clock::now_nanos(), current_tid(), kind, level, a, b);
        }
    }

    /// Snapshot of one latency surface.
    pub fn histogram(&self, kind: HistKind) -> HistSnapshot {
        self.inner.hists[kind as usize].snapshot()
    }

    /// Snapshot of every latency surface (for `MetricsSnapshot`).
    pub fn latency(&self) -> LatencySnapshot {
        LatencySnapshot {
            hists: std::array::from_fn(|i| self.inner.hists[i].snapshot()),
        }
    }

    /// The resident events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.ring.events()
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped_events(&self) -> u64 {
        self.inner.ring.dropped()
    }

    /// The resident events as JSONL.
    pub fn events_jsonl(&self) -> String {
        to_jsonl(&self.events())
    }

    /// The resident events as a Chrome `trace_event` JSON document.
    pub fn chrome_trace(&self) -> String {
        to_chrome_trace(&self.events())
    }
}

/// RAII latency timer from [`ObsHandle::timer`]: records elapsed
/// nanoseconds into its histogram when dropped.
pub struct OpTimer<'a> {
    obs: Option<&'a ObsHandle>,
    kind: HistKind,
    start: u64,
}

impl Drop for OpTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(obs) = self.obs {
            let elapsed = clock::now_nanos().saturating_sub(self.start);
            let weight = if self.kind.sampled() { FG_SAMPLE } else { 1 };
            obs.inner.hists[self.kind as usize].record_weighted(elapsed, weight);
        }
    }
}

/// Snapshots of all latency surfaces, carried by `MetricsSnapshot`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySnapshot {
    hists: [HistSnapshot; NUM_HISTS],
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot {
            hists: std::array::from_fn(|_| HistSnapshot::default()),
        }
    }
}

impl LatencySnapshot {
    /// The snapshot for one surface.
    pub fn get(&self, kind: HistKind) -> &HistSnapshot {
        &self.hists[kind as usize]
    }

    /// Bucket-wise difference `self - earlier` across every surface.
    pub fn delta(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            hists: std::array::from_fn(|i| self.hists[i].delta(&earlier.hists[i])),
        }
    }

    /// Bucket-wise accumulation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencySnapshot) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = ObsHandle::disabled();
        obs.record(HistKind::Get, 100);
        {
            let _t = obs.timer(HistKind::Put);
        }
        obs.emit(EventKind::FlushStart, Some(0), 1, 2);
        assert!(!obs.enabled());
        assert_eq!(obs.histogram(HistKind::Get).count(), 0);
        assert_eq!(obs.histogram(HistKind::Put).count(), 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.now_nanos(), 0);
    }

    #[test]
    fn timer_records_on_drop() {
        let obs = ObsHandle::recording();
        // Flush is timed exhaustively: one timer, one sample.
        {
            let _t = obs.timer(HistKind::Flush);
            std::hint::black_box(42);
        }
        assert_eq!(obs.histogram(HistKind::Flush).count(), 1);
        assert_eq!(obs.histogram(HistKind::Compaction).count(), 0);
    }

    #[test]
    fn sampled_timer_weights_counts_to_estimate_totals() {
        let obs = ObsHandle::recording();
        // Get is a sampled foreground surface: over a whole number of
        // sampling periods, the weighted count equals the call count.
        let calls = 10 * FG_SAMPLE;
        for _ in 0..calls {
            let _t = obs.timer(HistKind::Get);
            std::hint::black_box(42);
        }
        // This thread's rotation phase is unknown (other tests tick it),
        // so the estimate may be off by up to one period's weight.
        let count = obs.histogram(HistKind::Get).count();
        assert!(
            count.abs_diff(calls) <= FG_SAMPLE,
            "weighted count {count} should estimate {calls} calls"
        );
    }

    #[test]
    fn shared_handles_accumulate_into_one_surface() {
        let obs = ObsHandle::recording();
        let clone = obs.clone();
        obs.record(HistKind::Flush, 500);
        clone.record(HistKind::Flush, 700);
        clone.emit(EventKind::FlushEnd, Some(0), 700, 0);
        assert_eq!(obs.histogram(HistKind::Flush).count(), 2);
        assert_eq!(obs.events().len(), 1);
    }

    #[test]
    fn latency_snapshot_delta_is_per_surface() {
        let obs = ObsHandle::recording();
        obs.record(HistKind::Get, 100);
        let a = obs.latency();
        obs.record(HistKind::Get, 200);
        obs.record(HistKind::Put, 300);
        let d = obs.latency().delta(&a);
        assert_eq!(d.get(HistKind::Get).count(), 1);
        assert_eq!(d.get(HistKind::Put).count(), 1);
        assert_eq!(d.get(HistKind::Scan).count(), 0);
    }

    #[test]
    fn observability_resolution() {
        assert!(Observability::On.into_handle().enabled());
        assert!(!Observability::Off.into_handle().enabled());
        let h = ObsHandle::recording();
        h.record(HistKind::Get, 1);
        let shared = Observability::Shared(h.clone()).into_handle();
        assert_eq!(shared.histogram(HistKind::Get).count(), 1);
    }

    #[test]
    fn hist_kind_names_are_unique() {
        let mut names: Vec<_> = HistKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_HISTS);
    }
}
