//! Lock-free log-bucketed latency histograms (HDR-style).
//!
//! The layout is fixed: 64 power-of-two ranges × [`SUB_BUCKETS`] linear
//! sub-buckets each, giving a worst-case relative error of 1/16 (6.25%)
//! over the full `u64` nanosecond range with a flat 8 KiB of atomic
//! counters. Recording is a single relaxed `fetch_add` per value (plus one
//! for the running sum), so histograms can sit on the hottest paths and be
//! shared freely across threads.
//!
//! Snapshots are plain `Vec<u64>` mirrors supporting bucket-wise `delta`
//! (for phase measurements) and `merge`, with `p50/p90/p99/p999/max`
//! queries answered from the buckets. `max` is therefore bucket-resolution
//! (an upper bound within 6.25%), which keeps it meaningful under `delta`
//! where an exact running maximum cannot be subtracted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Total counter slots: 64 exponent ranges × 16 sub-buckets. Values below
/// [`SUB_BUCKETS`] are exact, so the top ranges are never all reachable;
/// the fixed size keeps indexing branch-free and snapshots mergeable.
pub const NUM_BUCKETS: usize = 64 * SUB_BUCKETS;

/// Bucket index for `v` (saturating at the top bucket).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        let idx = (exp as usize - SUB_BITS as usize + 1) * SUB_BUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `idx` (the value reported for any
/// sample that landed in it).
#[inline]
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let exp = (idx / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB_BUCKETS) as u128;
        let shift = exp - SUB_BITS;
        // The deepest ranges exceed u64; saturate (they are unreachable
        // from `bucket_index`, which never emits an index past u64::MAX's).
        let hi = ((SUB_BUCKETS as u128 + sub + 1) << shift).min(u64::MAX as u128 + 1);
        (hi - 1) as u64
    }
}

/// A lock-free latency histogram: share behind an `Arc`, record from any
/// thread, snapshot at leisure.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // A `const` item is the idiomatic way to seed an array of atomics.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: Box::new([ZERO; NUM_BUCKETS]),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds). One relaxed `fetch_add` per
    /// counter touched; safe on the hottest paths.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_weighted(v, 1);
    }

    /// Records one observed sample standing in for `weight` operations.
    /// Sampled surfaces record 1-in-N with weight N: every bucket scales
    /// uniformly, so quantiles are unchanged and `count()` still estimates
    /// the true operation count.
    #[inline]
    pub fn record_weighted(&self, v: u64, weight: u64) {
        self.buckets[bucket_index(v)].fetch_add(weight, Ordering::Relaxed);
        self.sum
            .fetch_add(v.saturating_mul(weight), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut any = false;
        for (slot, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = slot.load(Ordering::Relaxed);
            any |= *out != 0;
        }
        HistSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            buckets: if any { buckets } else { Vec::new() },
        }
    }
}

/// A plain-data copy of a [`Histogram`]: bucket-wise arithmetic plus
/// percentile queries. An empty bucket vector means "all zero" so default
/// snapshots are cheap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Sum of all recorded values (nanoseconds).
    pub sum: u64,
    buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Largest recorded value, at bucket resolution (upper bound within
    /// 6.25%). Zero when empty.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, bucket_value)
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper bound). Zero
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        self.max()
    }

    /// Median (nanoseconds).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 90th percentile (nanoseconds).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    /// 99th percentile (nanoseconds).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// 99.9th percentile (nanoseconds).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of recorded values; zero when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating), for phase
    /// measurements between two snapshots of the same histogram.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        if earlier.buckets.is_empty() {
            return self.clone();
        }
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut any = false;
        for (idx, out) in buckets.iter_mut().enumerate() {
            let now = self.buckets.get(idx).copied().unwrap_or(0);
            let then = earlier.buckets.get(idx).copied().unwrap_or(0);
            *out = now.saturating_sub(then);
            any |= *out != 0;
        }
        HistSnapshot {
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: if any { buckets } else { Vec::new() },
        }
    }

    /// Bucket-wise accumulation of `other` into `self` (for aggregating
    /// per-shard or per-run histograms).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0u64; NUM_BUCKETS];
        }
        for (out, &add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *out = out.saturating_add(add);
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value maps to a bucket whose upper bound is >= the value,
        // and bucket upper bounds are strictly increasing over the
        // reachable range (everything up to u64::MAX's bucket).
        let mut prev = None;
        for idx in 0..=bucket_index(u64::MAX) {
            let v = bucket_value(idx);
            if let Some(p) = prev {
                assert!(v > p, "bucket {idx}: {v} <= {p}");
            }
            prev = Some(v);
        }
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_value(idx) >= v, "value {v} above bucket {idx}");
            if idx > 0 {
                assert!(bucket_value(idx - 1) < v, "value {v} below bucket {idx}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 5..50u32 {
            let v = (1u64 << shift) + (1 << (shift - 2)) + 7;
            let reported = bucket_value(bucket_index(v));
            let err = (reported - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "value {v}: err {err}");
        }
    }

    #[test]
    fn percentiles_from_known_distribution() {
        let h = Histogram::new();
        // 1000 samples at ~100ns, 10 at ~10µs: p50/p90 in the low band,
        // p999/max in the high band.
        for _ in 0..1000 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1010);
        assert!(s.p50() >= 100 && s.p50() < 120, "p50={}", s.p50());
        assert!(s.p90() < 120);
        assert!(s.p999() >= 10_000 && s.p999() < 11_000, "p999={}", s.p999());
        assert!(s.max() >= 10_000 && s.max() < 11_000);
        assert_eq!(s.sum, 1000 * 100 + 10 * 10_000);
    }

    #[test]
    fn delta_and_merge_are_bucket_wise() {
        let h = Histogram::new();
        h.record(50);
        let a = h.snapshot();
        h.record(50);
        h.record(7_000);
        let b = h.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count(), 2);
        assert!(d.max() >= 7_000);
        assert_eq!(d.sum, 50 + 7_000);

        let mut m = a.clone();
        m.merge(&d);
        assert_eq!(m.count(), b.count());
        assert_eq!(m.sum, b.sum);
        assert_eq!(m, b);
    }

    #[test]
    fn empty_snapshot_queries_are_zero() {
        let s = HistSnapshot::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.max(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        // delta of empties stays empty
        assert!(s.delta(&s).is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record((t * 1000 + i) % 5000);
                }
            }));
        }
        for j in handles {
            j.join().expect("recorder thread");
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
