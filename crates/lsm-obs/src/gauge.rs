//! Per-level gauges sampled into metric snapshots.
//!
//! Unlike counters and histograms, gauges are instantaneous readings of
//! tree shape — they do not subtract under `delta`; a delta of two
//! snapshots carries the *later* reading (the shape "now").

/// One LSM level's shape at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelGauge {
    /// Level index (0 = freshest on-disk level).
    pub level: u32,
    /// Number of table files resident in the level.
    pub files: u64,
    /// Total bytes across the level's tables.
    pub bytes: u64,
    /// Number of sorted runs (a point lookup probes each run once, so
    /// this is the level's estimated read amplification).
    pub runs: u64,
}

impl LevelGauge {
    /// Estimated read amplification contributed by this level: one probe
    /// per sorted run.
    pub fn read_amp(&self) -> u64 {
        self.runs
    }
}

/// Estimated point-lookup read amplification across `levels`: total sorted
/// runs a lookup may probe.
pub fn estimated_read_amp(levels: &[LevelGauge]) -> u64 {
    levels.iter().map(|l| l.runs).sum()
}

/// Accumulates `other`'s per-level shape into `acc` index-wise, extending
/// `acc` when `other` is deeper. Used to aggregate the level gauges of
/// several shard engines into one fleet-wide tree view: files, bytes, and
/// runs add per level (a routed point lookup probes only its own shard, so
/// the *aggregate* runs column overstates per-lookup read amplification —
/// it describes total resident structure, not a single probe path).
pub fn merge_level_gauges(acc: &mut Vec<LevelGauge>, other: &[LevelGauge]) {
    for (i, o) in other.iter().enumerate() {
        if acc.len() <= i {
            acc.push(LevelGauge {
                level: o.level,
                ..LevelGauge::default()
            });
        }
        acc[i].files += o.files;
        acc[i].bytes += o.bytes;
        acc[i].runs += o.runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_amp_sums_runs() {
        let levels = [
            LevelGauge {
                level: 0,
                files: 4,
                bytes: 400,
                runs: 4,
            },
            LevelGauge {
                level: 1,
                files: 10,
                bytes: 4000,
                runs: 1,
            },
        ];
        assert_eq!(estimated_read_amp(&levels), 5);
        assert_eq!(levels[0].read_amp(), 4);
    }
}
