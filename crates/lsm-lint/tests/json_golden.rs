//! Pins the JSON report schema: the checked-in golden file must match
//! `LintReport::to_json()` byte-for-byte over the golden fixture tree, so
//! any change to the report shape (fields, ordering, formatting) is a
//! deliberate, reviewed diff.

use std::path::PathBuf;

#[test]
fn json_report_matches_golden_file() {
    let base = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let report = lsm_lint::lint_tree(&base.join("tree")).expect("golden tree readable");
    let golden = std::fs::read_to_string(base.join("report.json")).expect("golden file readable");
    assert_eq!(
        report.to_json(),
        golden,
        "JSON report schema drifted; if intentional, regenerate with\n  \
         cargo run -p lsm-lint -- --path crates/lsm-lint/tests/golden/tree \
         --json crates/lsm-lint/tests/golden/report.json"
    );
}
