//! End-to-end tests for `lsm-lint` over the fixture tree in
//! `tests/fixtures/`, which mirrors the workspace layout so crate-scoped
//! rules (L1's storage exemption, L2's hot-path set) resolve as they would
//! in the real tree.

use std::path::PathBuf;
use std::process::Command;

use lsm_lint::{lint_tree, Rule};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The full expected finding set: (rule, file, line).
const EXPECTED: &[(Rule, &str, usize)] = &[
    (Rule::FsBoundary, "crates/lsm-core/src/l1_violation.rs", 4),
    (Rule::FsBoundary, "crates/lsm-core/src/l1_violation.rs", 8),
    (Rule::NoPanic, "crates/lsm-core/src/l2_violation.rs", 4),
    (Rule::NoPanic, "crates/lsm-core/src/l2_violation.rs", 8),
    (Rule::NoPanic, "crates/lsm-core/src/l2_violation.rs", 12),
    (
        Rule::LockNesting,
        "crates/lsm-memtable/src/l3_violation.rs",
        12,
    ),
    (
        Rule::LockNesting,
        "crates/lsm-memtable/src/l3_cross_stmt.rs",
        16,
    ),
    // Inverted-rank fixture: one backwards edge (rank violation) plus the
    // cycle it closes with `forwards`, both anchored at the backwards edge.
    (Rule::LockOrder, "crates/lsm-core/src/l5_violation.rs", 24),
    (Rule::LockOrder, "crates/lsm-core/src/l5_violation.rs", 24),
    // Condvar fixture: the backwards edge exists only through the wait's
    // re-acquisition of `queue_mx`; the cycle anchors at the forward edge.
    (
        Rule::LockOrder,
        "crates/lsm-core/src/l5_condvar_wait.rs",
        29,
    ),
    (
        Rule::LockOrder,
        "crates/lsm-core/src/l5_condvar_wait.rs",
        31,
    ),
    (
        Rule::IoUnderLock,
        "crates/lsm-memtable/src/l6_violation.rs",
        15,
    ),
    (Rule::KnobDocs, "crates/lsm-core/src/options.rs", 7),
    // L0: unknown rule name, and a rationale-less durability suppression
    // (which also fails to suppress the L7 it sits on).
    (Rule::BadAllow, "crates/lsm-core/src/l0_unknown_allow.rs", 6),
    (
        Rule::BadAllow,
        "crates/lsm-core/src/l7_allow_needs_rationale.rs",
        18,
    ),
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_allow_needs_rationale.rs",
        19,
    ),
    // D1: seqno published / follower woken before the group's WAL append.
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_publish_before_append.rs",
        21,
    ),
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_publish_before_append.rs",
        29,
    ),
    // D2: ack between the append and its fsync.
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_publish_before_sync.rs",
        19,
    ),
    // D3: seeded regression — `mem` released before the manifest names the
    // fresh WAL segment.
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_freeze_regression.rs",
        34,
    ),
    // D4: seeded regression — manifest build/persist not atomic under the
    // `manifest_mx` ticket (persist-unlocked: both halves; build-outside:
    // the build only).
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_manifest_toctou.rs",
        29,
    ),
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_manifest_toctou.rs",
        30,
    ),
    (
        Rule::DurabilityOrder,
        "crates/lsm-core/src/l7_manifest_toctou.rs",
        36,
    ),
    // L0: a rationale-less atomics suppression (which also fails to
    // suppress the A1 it sits on).
    (
        Rule::BadAllow,
        "crates/lsm-core/src/l8_allow_needs_rationale.rs",
        12,
    ),
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_allow_needs_rationale.rs",
        13,
    ),
    // A1: Relaxed store under an Acquire consumer; Relaxed load under a
    // Release publisher.
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_relaxed_publish.rs",
        14,
    ),
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_relaxed_publish.rs",
        26,
    ),
    // A2: SeqCst without a rationale.
    (Rule::AtomicsOrder, "crates/lsm-core/src/l8_seqcst.rs", 11),
    // A3: Relaxed load gating a non-atomic read, directly and through a
    // uniquely-resolved intra-crate call.
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_relaxed_gate.rs",
        14,
    ),
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_relaxed_gate.rs",
        21,
    ),
    // A4: standalone fence with no named pairing site (the paired fence in
    // the same fixture stays clean).
    (
        Rule::AtomicsOrder,
        "crates/lsm-core/src/l8_fence_unpaired.rs",
        7,
    ),
];

#[test]
fn fixture_tree_produces_exactly_the_expected_findings() {
    let report = lint_tree(&fixtures_root()).expect("fixture tree readable");
    let mut found: Vec<(Rule, String, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.path.clone(), d.line))
        .collect();
    found.sort_by(|a, b| (a.1.as_str(), a.2).cmp(&(b.1.as_str(), b.2)));

    let mut expected: Vec<(Rule, String, usize)> = EXPECTED
        .iter()
        .map(|&(r, p, l)| (r, p.to_string(), l))
        .collect();
    expected.sort_by(|a, b| (a.1.as_str(), a.2).cmp(&(b.1.as_str(), b.2)));
    assert_eq!(
        found, expected,
        "fixture findings diverged (allow-comments and test-code fixtures \
         must stay clean; violation fixtures must be caught at these lines)"
    );
}

#[test]
fn allow_comments_and_test_code_are_exempt() {
    let report = lint_tree(&fixtures_root()).expect("fixture tree readable");
    for clean in [
        "allowed.rs",
        "test_exempt.rs",
        "l3_drop_ok.rs",
        "l6_allowed.rs",
        "ordered_ok.rs",
        "l7_allowed.rs",
        "l8_clean.rs",
        "l8_allowed.rs",
    ] {
        assert!(
            !report.diagnostics.iter().any(|d| d.path.ends_with(clean)),
            "{clean} must produce no findings"
        );
    }
}

#[test]
fn obs_calls_under_locks_are_not_io() {
    // The observability layer is atomics-only: `obs.emit`/`obs.timer`/
    // `obs.record` under a live lock guard never block, so L6 must not
    // fire on them (see the IO_RECEIVERS note in lockgraph.rs).
    let report = lint_tree(&fixtures_root()).expect("fixture tree readable");
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.path.ends_with("l6_obs_clean.rs"))
        .collect();
    assert!(
        hits.is_empty(),
        "observability calls under a lock were flagged: {hits:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_fixtures_with_file_line_diagnostics() {
    let out_dir = std::env::temp_dir().join(format!("lsm-lint-test-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("temp dir");
    let json_path = out_dir.join("report.json");
    let output = Command::new(env!("CARGO_BIN_EXE_lsm-lint"))
        .arg("--path")
        .arg(fixtures_root())
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run lsm-lint binary");
    assert!(
        !output.status.success(),
        "linter must exit non-zero on the violation fixtures"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("crates/lsm-core/src/l1_violation.rs:4"),
        "diagnostics must carry file:line anchors; got:\n{stderr}"
    );

    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"rule\": \"L1\""));
    assert!(json.contains("\"file\": \"crates/lsm-core/src/l2_violation.rs\""));
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn binary_exits_zero_on_a_clean_tree() {
    let clean = std::env::temp_dir().join(format!("lsm-lint-clean-{}", std::process::id()));
    let src = clean.join("crates/lsm-core/src");
    std::fs::create_dir_all(&src).expect("temp tree");
    std::fs::write(
        src.join("lib.rs"),
        "//! Clean.\n\n/// Adds one.\npub fn inc(x: u32) -> u32 {\n    x + 1\n}\n",
    )
    .expect("write clean file");
    let output = Command::new(env!("CARGO_BIN_EXE_lsm-lint"))
        .arg("--path")
        .arg(&clean)
        .arg("--json")
        .arg(clean.join("report.json"))
        .output()
        .expect("run lsm-lint binary");
    assert!(
        output.status.success(),
        "linter must exit zero on a clean tree; stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::remove_dir_all(&clean).ok();
}
