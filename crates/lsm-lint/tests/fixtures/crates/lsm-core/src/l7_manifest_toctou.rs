//! Fixture: seeded regression of the manifest stale-overwrite TOCTOU —
//! build and persist must be one atomic section under `manifest_mx`, or a
//! snapshot built before a concurrent freeze overwrites the freeze's
//! manifest with one that no longer lists its WAL segment (L7, D4).

use lsm_sync::{ranks, OrderedMutex};

use crate::backend::Backend;
use crate::manifest::MANIFEST_META;

/// Manifest state with the pipeline's field names.
pub struct ManifestRace {
    manifest_mx: OrderedMutex<()>,
    backend: Backend,
}

impl ManifestRace {
    /// Binds the ticket's rank.
    pub fn new(backend: Backend) -> Self {
        Self {
            manifest_mx: OrderedMutex::new(ranks::ALPHA, ()),
            backend,
        }
    }

    /// Persists without the ticket: two racers interleave build and write.
    pub fn persist_unlocked(&self) {
        let backend = &self.backend;
        let bytes = self.build_manifest();
        backend.put_meta(MANIFEST_META, &bytes);
    }

    /// Takes the ticket only for the write: the snapshot can be stale.
    pub fn build_outside_ticket(&self) {
        let backend = &self.backend;
        let bytes = self.build_manifest();
        let _ticket = self.manifest_mx.lock();
        // lsm-lint: allow(io-under-lock)
        backend.put_meta(MANIFEST_META, &bytes);
    }

    /// Builds the manifest snapshot.
    fn build_manifest(&self) -> Vec<u8> {
        Vec::new()
    }
}
