//! A4 fixture: a standalone fence must name its pairing site; the second
//! fence does and stays clean.

use std::sync::atomic::{fence, Ordering};

pub fn unpaired_fence() {
    fence(Ordering::Release);
}

pub fn paired_fence() {
    // pairs with the Release fence in unpaired_fence (fixture prose)
    fence(Ordering::Acquire);
}
