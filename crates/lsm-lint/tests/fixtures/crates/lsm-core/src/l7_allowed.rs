//! Fixture: durability-order findings suppressed with the two accepted
//! rationale forms — a comment line above the marker, and prose after the
//! marker's closing parenthesis. Both must stay clean.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::wal::Wal;

/// Recovery-style state: publish precedes the re-log append.
pub struct RecoveryPublish {
    seqno: AtomicU64,
    wal: Wal,
}

impl RecoveryPublish {
    /// Rationale on the line above the marker.
    pub fn replay(&self, base: u64, recs: &[u8]) {
        let writer = &self.wal;
        // Single-threaded recovery: no observer exists until re-log ends.
        // lsm-lint: allow(durability-order)
        self.seqno.store(base, Ordering::Release);
        writer.append(recs);
        writer.sync();
    }

    /// Rationale inline after the closing parenthesis.
    pub fn replay_inline(&self, base: u64, recs: &[u8]) {
        let writer = &self.wal;
        self.seqno.store(base, Ordering::Release); // lsm-lint: allow(durability-order) - recovery is single-threaded
        writer.append(recs);
    }
}
