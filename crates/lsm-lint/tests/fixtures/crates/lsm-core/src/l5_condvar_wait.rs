//! Fixture: a condvar wait entered while a higher-ranked lock is held —
//! the wakeup path re-acquires the waited mutex, so the rank checker must
//! treat the wait site as an acquisition even though no `.lock()` appears
//! in the source (L5).

use lsm_sync::{ranks, Condvar, OrderedMutex};

/// Queue with its condvar plus an unrelated higher-ranked lock.
pub struct Waiter {
    queue_mx: OrderedMutex<Vec<u8>>,
    queue_cv: Condvar,
    state: OrderedMutex<u64>,
}

impl Waiter {
    /// Binds `queue_mx` below `state` in the hierarchy.
    pub fn new() -> Self {
        Self {
            queue_mx: OrderedMutex::new(ranks::ALPHA, Vec::new()),
            queue_cv: Condvar::new(),
            state: OrderedMutex::new(ranks::BETA, 0),
        }
    }

    /// Waits on `queue_cv` with `state` held: the re-acquisition edge
    /// `state -> queue_mx` runs against the ranks and closes a cycle.
    pub fn wait_under_state(&self) -> u64 {
        let mut q = self.queue_mx.lock();
        let _s = self.state.lock();
        while q.is_empty() {
            self.queue_cv.wait(&mut q);
        }
        *_s
    }

    /// Wakes waiters (keeps the condvar out of the lost-wakeup check).
    pub fn wake(&self) {
        self.queue_cv.notify_all();
    }
}
