//! Fixture: violations suppressed with `lsm-lint: allow(...)` markers.

pub fn annotated_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // lsm-lint: allow(L2)
}

pub fn annotated_fs() -> bool {
    // lsm-lint: allow(fs-boundary)
    std::fs::metadata("/tmp/ok").is_ok()
}
