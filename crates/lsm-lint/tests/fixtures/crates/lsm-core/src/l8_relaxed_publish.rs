//! A1 fixture: `Relaxed` accesses on publication fields. `ready` has an
//! Acquire consumer, so its Relaxed store unpairs the publication;
//! `committed` has a Release publisher, so its Relaxed load does.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Publish {
    ready: AtomicU64,
    committed: AtomicU64,
}

impl Publish {
    pub fn publish_relaxed(&self) {
        self.ready.store(1, Ordering::Relaxed);
    }

    pub fn consume_acquire(&self) -> u64 {
        self.ready.load(Ordering::Acquire)
    }

    pub fn publish_release(&self) {
        self.committed.store(1, Ordering::Release);
    }

    pub fn consume_relaxed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }
}
