//! Fixture: an unknown rule name in a suppression marker is flagged — a
//! typo must not silently disable nothing.

/// The marker names a rule that does not exist.
pub fn typo(x: Option<u32>) -> Option<u32> {
    // lsm-lint: allow(no-unwrap)
    x.map(|v| v + 1)
}
