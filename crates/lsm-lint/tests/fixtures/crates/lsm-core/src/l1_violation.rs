//! Fixture: direct filesystem access outside `lsm-storage` (L1).

pub fn read_sideways() -> Vec<u8> {
    std::fs::read("/tmp/sneaky").unwrap_or_default()
}

pub fn probe() -> bool {
    std::fs::metadata("/tmp/sneaky").is_ok()
}
