//! Fixture: seeded regression of the ack-into-an-unnamed-WAL-segment bug —
//! `mem` is released before the manifest naming the fresh segment is
//! persisted, so writers can commit into a segment recovery will never
//! find (L7, D3).

use lsm_sync::{ranks, OrderedMutex, OrderedRwLock};

use crate::backend::Backend;
use crate::manifest::MANIFEST_META;

/// Freeze state with the pipeline's field names.
pub struct FreezeEarlyRelease {
    manifest_mx: OrderedMutex<()>,
    mem: OrderedRwLock<Vec<u8>>,
    backend: Backend,
}

impl FreezeEarlyRelease {
    /// Binds the ticket below the memtable lock.
    pub fn new(backend: Backend) -> Self {
        Self {
            manifest_mx: OrderedMutex::new(ranks::ALPHA, ()),
            mem: OrderedRwLock::new(ranks::BETA, Vec::new()),
            backend,
        }
    }

    /// Drops the memtable lock between segment creation and the persist.
    pub fn freeze(&self) {
        let _ticket = self.manifest_mx.lock();
        let mut guard = self.mem.write();
        let backend = &self.backend;
        // lsm-lint: allow(io-under-lock)
        let segment = backend.create_appendable();
        guard.push(segment);
        drop(guard);
        let bytes = self.build_manifest();
        // lsm-lint: allow(io-under-lock)
        backend.put_meta(MANIFEST_META, &bytes);
    }

    /// Builds the manifest snapshot.
    fn build_manifest(&self) -> Vec<u8> {
        Vec::new()
    }
}
