//! A2 fixture: `SeqCst` without an annotated rationale.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Strict {
    epoch: AtomicU64,
}

impl Strict {
    pub fn bump(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst)
    }
}
