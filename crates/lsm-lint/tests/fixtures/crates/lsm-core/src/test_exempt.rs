//! Fixture: panics and fs access inside test code are exempt.

/// Doubles a value without panicking.
pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_and_touch_fs() {
        assert_eq!(super::double(2), 4);
        let meta = std::fs::metadata("/");
        meta.unwrap();
    }
}
