//! Fixture: visibility effects fire before the group's WAL append — both
//! the seqno publish and the follower wakeup must be flagged (L7, D1).

use std::sync::atomic::{AtomicU64, Ordering};

use lsm_sync::Condvar;

use crate::wal::Wal;

/// Commit state mirroring the pipeline's field names.
pub struct EarlyPublish {
    seqno: AtomicU64,
    commit_cv: Condvar,
    wal: Wal,
}

impl EarlyPublish {
    /// Publishes the sequence number before logging the group.
    pub fn publish_early(&self, base: u64, recs: &[u8]) {
        let writer = &self.wal;
        self.seqno.store(base + 1, Ordering::Release);
        writer.append(recs);
        writer.sync();
    }

    /// Wakes the follower before its record hits the WAL.
    pub fn ack_early(&self, recs: &[u8]) {
        let writer = &self.wal;
        self.commit_cv.notify_all();
        writer.append(recs);
    }
}
