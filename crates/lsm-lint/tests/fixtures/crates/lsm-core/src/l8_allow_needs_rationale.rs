//! L0 fixture: `allow(atomics-order)` without a rationale is a bad-allow,
//! and the A1 finding it sits on is *not* suppressed.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct BareAllow {
    turn: AtomicU64,
}

impl BareAllow {
    pub fn publish(&self) {
        // lsm-lint: allow(atomics-order)
        self.turn.store(1, Ordering::Relaxed);
    }

    pub fn consume(&self) -> u64 {
        self.turn.load(Ordering::Acquire)
    }
}
