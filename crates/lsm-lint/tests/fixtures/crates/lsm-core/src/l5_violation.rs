//! Fixture: tracked locks constructed with inverted ranks — acquiring
//! them in both directions yields an order violation and a cycle (L5).

use lsm_sync::{ranks, OrderedMutex};

/// `hi` carries the greater rank but is acquired first by `backwards`.
pub struct Inverted {
    hi: OrderedMutex<Vec<u8>>,
    lo: OrderedMutex<Vec<u8>>,
}

impl Inverted {
    /// Binds `hi` to the greater rank and `lo` to the lesser one.
    pub fn new() -> Self {
        Self {
            hi: OrderedMutex::new(ranks::BETA, Vec::new()),
            lo: OrderedMutex::new(ranks::ALPHA, Vec::new()),
        }
    }

    /// Acquires `lo` under `hi`: rank order says this edge is backwards.
    pub fn backwards(&self) -> usize {
        let g = self.hi.lock();
        self.lo.lock().len() + g.len()
    }

    /// Acquires `hi` under `lo`: rank-consistent, but closes the cycle.
    pub fn forwards(&self) -> usize {
        let g = self.lo.lock();
        self.hi.lock().len() + g.len()
    }
}
