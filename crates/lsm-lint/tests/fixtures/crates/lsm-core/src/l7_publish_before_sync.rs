//! Fixture: the ack lands between the WAL append and its fsync — on a sync
//! path the writer is told its data is durable before it is (L7, D2).

use std::sync::atomic::{AtomicBool, Ordering};

use crate::wal::Wal;

/// Sync-path commit state.
pub struct EarlyAck {
    done: AtomicBool,
    wal: Wal,
}

impl EarlyAck {
    /// Acknowledges after the append but before the bytes reach disk.
    pub fn ack_between(&self, recs: &[u8]) {
        let writer = &self.wal;
        writer.append(recs);
        self.done.store(true, Ordering::Release);
        writer.sync();
    }
}
