//! Fixture: a knob struct with an undocumented public field (L4).

/// The fixture's options surface.
pub struct Options {
    /// Size of the write buffer in bytes (memory-allocation knob).
    pub write_buffer_bytes: usize,
    pub undocumented_knob: usize,
}
