//! A3 fixture: a `Relaxed` load gating reads of non-atomic state — once
//! directly in the guarded block, once through an intra-crate call that
//! reads `self.table` without a lock.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Gate {
    initialized: AtomicU64,
    table: Vec<u64>,
}

impl Gate {
    pub fn direct(&self) -> u64 {
        if self.initialized.load(Ordering::Relaxed) == 1 {
            return self.table[0];
        }
        0
    }

    pub fn via_call(&self) -> u64 {
        if self.initialized.load(Ordering::Relaxed) == 1 {
            return self.first_entry();
        }
        0
    }

    fn first_entry(&self) -> u64 {
        self.table[0]
    }
}
