//! Fixture: a bare durability-order suppression is itself a finding — the
//! marker earns an L0 and the L7 it tried to silence still fires.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::wal::Wal;

/// Early-publish state behind a rationale-less marker.
pub struct BareAllow {
    seqno: AtomicU64,
    wal: Wal,
}

impl BareAllow {
    /// The marker carries no rationale, so it suppresses nothing.
    pub fn publish_early(&self, base: u64, recs: &[u8]) {
        let writer = &self.wal;
        // lsm-lint: allow(durability-order)
        self.seqno.store(base, Ordering::Release);
        writer.append(recs);
    }
}
