//! Clean atomics fixture: a proper Release/Acquire publication pair, and a
//! counter that guards nothing and stays `Relaxed` end to end.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Clean {
    published: AtomicU64,
    occupancy: AtomicUsize,
}

impl Clean {
    pub fn publish(&self) {
        self.published.store(1, Ordering::Release);
    }

    pub fn consume(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    pub fn bump(&self) {
        self.occupancy.fetch_add(1, Ordering::Relaxed);
    }

    pub fn occupancy_hint(&self) -> usize {
        self.occupancy.load(Ordering::Relaxed)
    }
}
