//! Fixture: panicking calls in a hot-path crate (L2).

pub fn hot_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn hot_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn hot_panic() {
    panic!("boom");
}
