//! Suppressed atomics fixture: deliberate A1/A2 exceptions, each annotated
//! with `allow(atomics-order)` plus a rationale, must produce no findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct AllowedAtomics {
    init_flag: AtomicU64,
}

impl AllowedAtomics {
    pub fn init(&self) {
        // construction happens before any consumer thread is spawned
        // lsm-lint: allow(atomics-order)
        self.init_flag.store(1, Ordering::Relaxed);
    }

    pub fn strict_read(&self) -> u64 {
        // lsm-lint: allow(atomics-order) — the cross-shard total order is load-bearing
        self.init_flag.load(Ordering::SeqCst)
    }

    pub fn consume(&self) -> u64 {
        self.init_flag.load(Ordering::Acquire)
    }
}
