//! Fixture rank table mirroring `lsm-sync::ranks` (parsed textually).

/// Rank for the lock that must be acquired first.
pub const ALPHA: LockRank = LockRank::new("fixture.alpha", 10);
/// Rank for the lock that must be acquired second.
pub const BETA: LockRank = LockRank::new("fixture.beta", 20);
