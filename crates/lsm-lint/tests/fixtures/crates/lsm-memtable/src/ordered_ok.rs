//! Fixture: tracked locks acquired in rank order — clean under L3/L5.

use lsm_sync::{ranks, OrderedMutex};

/// Two tracked locks with an ascending acquisition pattern.
pub struct InOrder {
    low: OrderedMutex<u64>,
    high: OrderedMutex<u64>,
}

impl InOrder {
    /// Binds ranks in construction order.
    pub fn new() -> Self {
        Self {
            low: OrderedMutex::new(ranks::ALPHA, 0),
            high: OrderedMutex::new(ranks::BETA, 0),
        }
    }

    /// Acquires `high` while holding `low`: ascending, allowed.
    pub fn sum(&self) -> u64 {
        let a = self.low.lock();
        *a + *self.high.lock()
    }
}
