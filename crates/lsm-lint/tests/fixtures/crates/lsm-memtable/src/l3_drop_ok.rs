//! Fixture: sequential raw-lock use — the first guard is dropped before
//! the second acquisition, so no nesting is reported.

use std::sync::Mutex;

/// Two raw locks used strictly one-at-a-time.
pub struct Sequential {
    left: Mutex<Vec<u8>>,
    right: Mutex<Vec<u8>>,
}

impl Sequential {
    /// Drop-before-reacquire is the allowed pattern.
    pub fn one_at_a_time(&self) -> usize {
        let a = self.left.lock().unwrap();
        let n = a.len();
        drop(a);
        let b = self.right.lock().unwrap();
        n + b.len()
    }
}
