//! Fixture: nested lock acquisition in one expression chain (L3).

use std::sync::Mutex;

pub struct Two {
    a: Mutex<Vec<u8>>,
    b: Mutex<Vec<u8>>,
}

impl Two {
    pub fn tangled(&self) -> usize {
        self.a.lock().unwrap().len() + self.b.lock().unwrap().len()
    }
}
