//! Fixture: blocking backend I/O while a lock guard is live (L6).

use std::sync::Mutex;

/// The `backend` receiver name is what the linter keys on.
pub struct Logger {
    state: Mutex<u64>,
    backend: Backend,
}

impl Logger {
    /// Appends under the state lock: flagged.
    pub fn log(&self, payload: &[u8]) -> u64 {
        let mut state = self.state.lock().unwrap();
        self.backend.append(0, payload);
        *state += 1;
        *state
    }
}
