//! Fixture: annotated backend I/O under a lock — suppressed by the
//! escape hatch.

use std::sync::Mutex;

/// Same shape as `l6_violation`, with a rationale and annotation.
pub struct QuietLogger {
    count: Mutex<u64>,
    backend: Backend,
}

impl QuietLogger {
    /// The append is ordered-by-design here; the annotation records that.
    pub fn log(&self, payload: &[u8]) -> u64 {
        let mut count = self.count.lock().unwrap();
        // lsm-lint: allow(io-under-lock)
        self.backend.append(0, payload);
        *count += 1;
        *count
    }
}
