//! Fixture: observability calls under a live lock guard are NOT I/O (L6).
//!
//! `ObsHandle` is atomics-only and sits outside the lock hierarchy, so
//! emitting events or starting timers inside a lock scope is legitimate —
//! the linter must stay silent on every line of this file.

use std::sync::Mutex;

/// The `obs` receiver name must not key the I/O-under-lock rule.
pub struct Instrumented {
    state: Mutex<u64>,
    obs: ObsHandle,
}

impl Instrumented {
    /// Emits and times under the state lock: clean.
    pub fn bump(&self) -> u64 {
        let mut state = self.state.lock().expect("poisoned");
        let _t = self.obs.timer(HistKind::Put);
        self.obs.emit(EventKind::StallBegin, None, *state, 0);
        self.obs.record(HistKind::Flush, 1500);
        *state += 1;
        *state
    }
}
