//! Fixture: raw lock held across a statement boundary while a second raw
//! lock is acquired (L3 cross-statement detection).

use std::sync::Mutex;

/// Two raw locks with no declared order.
pub struct Pair {
    first: Mutex<Vec<u8>>,
    second: Mutex<Vec<u8>>,
}

impl Pair {
    /// Acquires `second` while the `first` guard is still live.
    pub fn nested(&self) -> usize {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        a.len() + b.len()
    }
}
