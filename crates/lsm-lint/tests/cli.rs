//! Black-box tests for the `lsm-lint` binary: the exit-code contract
//! (0 clean, 1 findings or stale spec, 2 bad arguments), the
//! `--write-*`/`--check-*` spec round-trips, and the L0 surface for
//! malformed allow markers. Everything runs against throwaway trees in the
//! temp dir so the tests cannot be perturbed by (or perturb) the real
//! workspace.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsm-lint"))
}

fn run(args: &[&dyn AsRef<std::ffi::OsStr>]) -> Output {
    let mut cmd = bin();
    for a in args {
        cmd.arg(a.as_ref());
    }
    cmd.output().expect("run lsm-lint binary")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("binary exits normally")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A scratch tree mirroring the workspace layout (`crates/<name>/src/`),
/// removed on drop.
struct Tree {
    root: PathBuf,
}

impl Tree {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "lsm-lint-cli-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).expect("scratch tree");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parented")).expect("mkdir");
        std::fs::write(path, content).expect("write fixture");
        self
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

const CLEAN_FILE: &str = "//! Clean.\n\n/// Adds one.\npub fn inc(x: u32) -> u32 {\n    x + 1\n}\n";

fn clean_tree(tag: &str) -> Tree {
    let t = Tree::new(tag);
    t.write("crates/lsm-core/src/lib.rs", CLEAN_FILE);
    t
}

// ------------------------------------------------------------- exit codes

#[test]
fn exits_zero_on_a_clean_tree() {
    let t = clean_tree("clean");
    let out = run(&[&"--path", &t.path(), &"--json", &t.path().join("r.json")]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
}

#[test]
fn exits_one_on_findings() {
    let t = clean_tree("findings");
    // L2: panic in a hot-path crate.
    t.write(
        "crates/lsm-core/src/hot.rs",
        "//! Hot path.\n\n/// Boom.\npub fn boom() {\n    panic!(\"no\");\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--json", &t.path().join("r.json")]);
    assert_eq!(exit_code(&out), 1, "stderr:\n{}", stderr(&out));
    assert!(
        stderr(&out).contains("crates/lsm-core/src/hot.rs:5"),
        "diagnostics carry file:line anchors; got:\n{}",
        stderr(&out)
    );
}

#[test]
fn exits_two_on_unknown_argument() {
    let out = run(&[&"--frobnicate"]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr(&out).contains("unknown argument"),
        "got:\n{}",
        stderr(&out)
    );
}

#[test]
fn exits_two_on_flag_missing_its_value() {
    for flag in [
        "--path",
        "--json",
        "--write-lock-order",
        "--check-lock-order",
        "--write-durability-order",
        "--check-durability-order",
        "--write-atomics-order",
        "--check-atomics-order",
        "--only",
    ] {
        let out = run(&[&flag]);
        assert_eq!(exit_code(&out), 2, "{flag} without a value must exit 2");
        assert!(
            stderr(&out).contains("requires a value"),
            "{flag}: got\n{}",
            stderr(&out)
        );
    }
}

#[test]
fn help_exits_zero_and_documents_the_contract() {
    let out = run(&[&"--help"]);
    assert_eq!(exit_code(&out), 0);
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "L7 durability-order",
        "--check-durability-order",
        "L8 atomics-order",
        "--check-atomics-order",
        "--only",
        "Exit codes: 0 clean, 1 findings or stale spec, 2 bad arguments",
    ] {
        assert!(text.contains(needle), "--help must mention `{needle}`");
    }
}

// ------------------------------------------------------------- `--only`

/// A tree with one L2 finding (panic in a hot-path crate) and one L8
/// finding (Relaxed store on a field consumed with Acquire).
fn two_rule_tree(tag: &str) -> Tree {
    let t = clean_tree(tag);
    t.write(
        "crates/lsm-core/src/hot.rs",
        "//! Hot path.\n\n/// Boom.\npub fn boom() {\n    panic!(\"no\");\n}\n",
    );
    t.write(
        "crates/lsm-core/src/flag.rs",
        "//! Publication flag.\nuse std::sync::atomic::{AtomicU64, Ordering};\n\n\
         /// Flag.\npub struct Flag {\n    ready: AtomicU64,\n}\n\n\
         impl Flag {\n    /// Publish.\n    pub fn publish(&self) {\n        \
         self.ready.store(1, Ordering::Relaxed);\n    }\n\n    \
         /// Consume.\n    pub fn consume(&self) -> u64 {\n        \
         self.ready.load(Ordering::Acquire)\n    }\n}\n",
    );
    t
}

#[test]
fn only_filters_to_a_single_rule_by_name() {
    let t = two_rule_tree("only-name");
    let out = run(&[&"--path", &t.path(), &"--only", &"atomics-order"]);
    assert_eq!(exit_code(&out), 1, "stderr:\n{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("L8"), "L8 finding survives the filter:\n{err}");
    assert!(!err.contains("L2"), "other rules are filtered out:\n{err}");
}

#[test]
fn only_filters_to_a_single_rule_by_id() {
    let t = two_rule_tree("only-id");
    let out = run(&[&"--path", &t.path(), &"--only", &"L2"]);
    assert_eq!(exit_code(&out), 1, "stderr:\n{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("L2"), "L2 finding survives the filter:\n{err}");
    assert!(!err.contains("L8"), "other rules are filtered out:\n{err}");
}

#[test]
fn only_exits_zero_when_the_selected_rule_is_clean() {
    let t = clean_tree("only-clean");
    t.write(
        "crates/lsm-core/src/hot.rs",
        "//! Hot path.\n\n/// Boom.\npub fn boom() {\n    panic!(\"no\");\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--only", &"atomics-order"]);
    assert_eq!(
        exit_code(&out),
        0,
        "the L2 finding is outside the filter; stderr:\n{}",
        stderr(&out)
    );
}

#[test]
fn only_rejects_an_unknown_rule() {
    let t = clean_tree("only-unknown");
    let out = run(&[&"--path", &t.path(), &"--only", &"no-such-rule"]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr(&out).contains("no-such-rule") && stderr(&out).contains("atomics-order"),
        "the error names the bad rule and lists known ones; got:\n{}",
        stderr(&out)
    );
}

// ------------------------------------------------------- spec round-trips

#[test]
fn lock_order_spec_round_trips() {
    let t = clean_tree("lock-roundtrip");
    // Rank constants resolve against the tree's own ranks.rs, so the
    // scratch tree carries a two-entry table.
    t.write(
        "crates/lsm-sync/src/ranks.rs",
        "//! Ranks.\nuse crate::LockRank;\n\n\
         /// Writer ticket.\npub const DB_WRITE: LockRank = LockRank::new(\"db.write_mx\", 100);\n\
         /// Commit queue.\npub const DB_COMMIT: LockRank = LockRank::new(\"db.commit_mx\", 105);\n",
    );
    t.write(
        "crates/lsm-core/src/locks.rs",
        "//! One tracked lock.\nuse lsm_sync::{ranks, OrderedMutex};\n\n\
         /// State.\npub struct S {\n    /// Guarded.\n    pub mx: OrderedMutex<u32>,\n}\n\n\
         impl S {\n    /// New.\n    pub fn new() -> Self {\n        \
         Self { mx: OrderedMutex::new(ranks::DB_WRITE, 0) }\n    }\n}\n",
    );
    let spec = t.path().join("lock_order.json");

    let out = run(&[&"--path", &t.path(), &"--write-lock-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
    let written = std::fs::read_to_string(&spec).expect("spec written");
    assert!(written.contains("lsm-core/mx"), "spec lists the lock");

    // Fresh spec: check passes.
    let out = run(&[&"--path", &t.path(), &"--check-lock-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
    assert!(stderr(&out).contains("up to date"));

    // Tree drifts (second lock appears): the same spec is now stale.
    t.write(
        "crates/lsm-core/src/locks2.rs",
        "//! Another tracked lock.\nuse lsm_sync::{ranks, OrderedMutex};\n\n\
         /// More state.\npub struct S2 {\n    /// Guarded.\n    pub mx2: OrderedMutex<u32>,\n}\n\n\
         impl S2 {\n    /// New.\n    pub fn new() -> Self {\n        \
         Self { mx2: OrderedMutex::new(ranks::DB_COMMIT, 0) }\n    }\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--check-lock-order", &spec]);
    assert_eq!(exit_code(&out), 1, "stale spec must fail the check");
    assert!(
        stderr(&out).contains("stale") && stderr(&out).contains("--write-lock-order"),
        "stale message names the regeneration flag; got:\n{}",
        stderr(&out)
    );
}

#[test]
fn durability_order_spec_round_trips() {
    let t = clean_tree("dur-roundtrip");
    t.write(
        "crates/lsm-core/src/wal_path.rs",
        "//! A minimal durable write path.\n\n/// Engine.\npub struct Db {\n    \
         writer: W,\n    seqno: A,\n}\n\nimpl Db {\n    \
         fn commit(&self) {\n        self.writer.append(b\"x\");\n        \
         self.writer.sync();\n        self.seqno.store(1, Release);\n    }\n}\n",
    );
    let spec = t.path().join("durability_order.json");

    let out = run(&[&"--path", &t.path(), &"--write-durability-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
    let written = std::fs::read_to_string(&spec).expect("spec written");
    for needle in ["wal_append", "wal_sync", "seqno_publish", "\"commit\""] {
        assert!(written.contains(needle), "spec must record `{needle}`");
    }

    let out = run(&[&"--path", &t.path(), &"--check-durability-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));

    // Reorder the protocol (publish before sync): spec goes stale AND the
    // reordering itself is a D2 finding.
    t.write(
        "crates/lsm-core/src/wal_path.rs",
        "//! A minimal durable write path.\n\n/// Engine.\npub struct Db {\n    \
         writer: W,\n    seqno: A,\n}\n\nimpl Db {\n    \
         fn commit(&self) {\n        self.writer.append(b\"x\");\n        \
         self.seqno.store(1, Release);\n        self.writer.sync();\n    }\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--check-durability-order", &spec]);
    assert_eq!(exit_code(&out), 1);
    let err = stderr(&out);
    assert!(
        err.contains("stale") && err.contains("--write-durability-order"),
        "stale message names the regeneration flag; got:\n{err}"
    );
    assert!(
        err.contains("L7") && err.contains("wal_path.rs:11"),
        "the reordering must also fire durability-order at the publish; got:\n{err}"
    );
}

#[test]
fn atomics_order_spec_round_trips() {
    let t = clean_tree("atomics-roundtrip");
    t.write(
        "crates/lsm-core/src/flag.rs",
        "//! Publication flag.\nuse std::sync::atomic::{AtomicU64, Ordering};\n\n\
         /// Flag.\npub struct Flag {\n    ready: AtomicU64,\n}\n\n\
         impl Flag {\n    /// Publish.\n    pub fn publish(&self) {\n        \
         self.ready.store(1, Ordering::Release);\n    }\n\n    \
         /// Consume.\n    pub fn consume(&self) -> u64 {\n        \
         self.ready.load(Ordering::Acquire)\n    }\n}\n",
    );
    let spec = t.path().join("atomics_order.json");

    let out = run(&[&"--path", &t.path(), &"--write-atomics-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
    let written = std::fs::read_to_string(&spec).expect("spec written");
    for needle in ["\"ready\"", "publication", "\"publish\"", "\"consume\""] {
        assert!(written.contains(needle), "spec must record `{needle}`");
    }

    // Fresh spec: check passes.
    let out = run(&[&"--path", &t.path(), &"--check-atomics-order", &spec]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
    assert!(stderr(&out).contains("up to date"));

    // A new atomic field appears: the same spec is now stale.
    t.write(
        "crates/lsm-core/src/count.rs",
        "//! A counter.\nuse std::sync::atomic::{AtomicUsize, Ordering};\n\n\
         /// Counter.\npub struct Count {\n    hits: AtomicUsize,\n}\n\n\
         impl Count {\n    /// Bump.\n    pub fn bump(&self) {\n        \
         self.hits.fetch_add(1, Ordering::Relaxed);\n    }\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--check-atomics-order", &spec]);
    assert_eq!(exit_code(&out), 1, "stale spec must fail the check");
    assert!(
        stderr(&out).contains("stale") && stderr(&out).contains("--write-atomics-order"),
        "stale message names the regeneration flag; got:\n{}",
        stderr(&out)
    );
}

#[test]
fn check_fails_on_a_missing_spec_file() {
    let t = clean_tree("missing-spec");
    let out = run(&[
        &"--path",
        &t.path(),
        &"--check-durability-order",
        &t.path().join("nope.json"),
    ]);
    assert_eq!(exit_code(&out), 1);
    assert!(stderr(&out).contains("could not read"));
}

// ------------------------------------------------------------ allow (L0)

#[test]
fn unknown_rule_in_allow_is_rejected() {
    let t = clean_tree("bad-allow");
    t.write(
        "crates/lsm-core/src/sup.rs",
        "//! Bad suppression.\n\n/// F.\npub fn f() {\n    \
         // lsm-lint: allow(no-unwrap)\n    let _x = 1;\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--json", &t.path().join("r.json")]);
    assert_eq!(exit_code(&out), 1);
    let err = stderr(&out);
    assert!(
        err.contains("L0") && err.contains("no-unwrap"),
        "the unknown rule must be named in an L0 finding; got:\n{err}"
    );
}

#[test]
fn durability_allow_without_rationale_is_rejected_and_does_not_suppress() {
    let t = clean_tree("bare-allow");
    t.write(
        "crates/lsm-core/src/sup.rs",
        "//! Rationale-less suppression.\n\n/// Engine.\npub struct Db {\n    \
         writer: W,\n    seqno: A,\n}\n\nimpl Db {\n    \
         fn publish_first(&self) {\n        \
         // lsm-lint: allow(durability-order)\n        \
         self.seqno.store(1, Release);\n        \
         self.writer.append(b\"x\");\n        self.writer.sync();\n    }\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--json", &t.path().join("r.json")]);
    assert_eq!(exit_code(&out), 1);
    let err = stderr(&out);
    assert!(
        err.contains("L0") && err.contains("rationale"),
        "a bare durability-order allow is an L0 finding; got:\n{err}"
    );
    assert!(
        err.contains("L7"),
        "the bare marker must not suppress the underlying L7; got:\n{err}"
    );
}

#[test]
fn durability_allow_with_rationale_suppresses() {
    let t = clean_tree("good-allow");
    t.write(
        "crates/lsm-core/src/sup.rs",
        "//! Justified suppression.\n\n/// Engine.\npub struct Db {\n    \
         writer: W,\n    seqno: A,\n}\n\nimpl Db {\n    \
         fn publish_first(&self) {\n        \
         // Single-threaded recovery: re-logged before any writer commits.\n        \
         // lsm-lint: allow(durability-order)\n        \
         self.seqno.store(1, Release);\n        \
         self.writer.append(b\"x\");\n        self.writer.sync();\n    }\n}\n",
    );
    let out = run(&[&"--path", &t.path(), &"--json", &t.path().join("r.json")]);
    assert_eq!(exit_code(&out), 0, "stderr:\n{}", stderr(&out));
}

// ------------------------------------------------------------ JSON report

#[test]
fn json_report_counts_by_rule() {
    let t = clean_tree("json");
    t.write(
        "crates/lsm-core/src/hot.rs",
        "//! Hot path.\n\n/// Boom.\npub fn boom() {\n    panic!(\"no\");\n}\n",
    );
    let json_path = t.path().join("r.json");
    let out = run(&[&"--path", &t.path(), &"--json", &json_path]);
    assert_eq!(exit_code(&out), 1);
    let json = std::fs::read_to_string(&json_path).expect("report written");
    assert!(
        json.contains("\"by_rule\""),
        "v2 report has per-rule counts"
    );
    assert!(json.contains("\"L2\": 1"), "the panic is counted under L2");
}
