//! Golden-report fixture for L8: a Relaxed store on a publication field
//! (its consumer loads with Acquire).

use std::sync::atomic::{AtomicU64, Ordering};

/// Publication flag read by consumers with Acquire.
pub struct Flag {
    ready: AtomicU64,
}

impl Flag {
    /// Publishes with Relaxed — the A1 finding in the golden report.
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Relaxed);
    }

    /// Consumes with Acquire, making `ready` a publication field.
    pub fn consume(&self) -> u64 {
        self.ready.load(Ordering::Acquire)
    }
}
