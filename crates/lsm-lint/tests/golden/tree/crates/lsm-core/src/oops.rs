//! Golden-report fixture: one L1, one L2, and one suppressed L1 finding.

/// Reads a file without going through the storage backend.
pub fn read_direct() -> Vec<u8> {
    std::fs::read("data.bin").unwrap()
}

/// Suppressed variant: the allow comment keeps this out of the report.
pub fn read_allowed() -> Vec<u8> {
    // lsm-lint: allow(fs-boundary)
    std::fs::read("meta.bin").unwrap_or_default()
}
