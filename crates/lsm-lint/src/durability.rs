//! L7 `durability-order`: static verification of the durable-before-visible
//! commit protocol.
//!
//! The group-commit pipeline in `lsm-core` promises that nothing a reader or
//! a waiting writer can observe happens before the bytes backing it are in
//! the WAL (and fsynced, on sync paths), and that a fresh WAL segment is
//! named by a persisted manifest before the memtable lock that froze it is
//! released. Both halves of that promise have been broken before — a
//! manifest stale-overwrite TOCTOU and an ack-into-an-unnamed-WAL-segment
//! window — and both were only caught dynamically by the crash sweep. This
//! pass states the protocol as checkable ordering rules over an effect
//! classification of `lsm-core`/`lsm-storage` statements:
//!
//! | effect | source pattern |
//! |---|---|
//! | `wal_append` | `writer.append(..)` / `writer.append_records(..)` |
//! | `wal_sync` | `writer.sync()` |
//! | `wal_segment_create` | `backend.create_appendable()` |
//! | `manifest_build` | a `build_manifest(..)` / `manifest_from(..)` call |
//! | `manifest_persist` | `backend.put_meta(MANIFEST_META, ..)` |
//! | `seqno_publish` | `seqno.store(..)` |
//! | `ack` | `done.store(..)`, `commit_cv.notify_*()` |
//!
//! Effects are collected per function in source order, then flattened
//! through unambiguous intra-crate calls (the same resolution discipline as
//! the lock graph: a callee is followed only when its name maps to exactly
//! one function in the crate). The rules:
//!
//! - **D1** — no `seqno_publish`/`ack` at a point where the group's
//!   `wal_append` has not happened yet (a later append in the same
//!   flattened sequence proves the visibility effect fired too early).
//! - **D2** — on sync paths, no `seqno_publish`/`ack` between a
//!   `wal_append` and its `wal_sync`.
//! - **D3** — a `wal_segment_create` under the `mem` lock must be followed
//!   by a `manifest_persist` while that same `mem` guard is still live:
//!   releasing `mem` first opens a window where writers append into a
//!   segment no manifest names.
//! - **D4** — `manifest_persist` must happen under the `manifest_mx`
//!   ticket, and in a persisting function every `manifest_build` must be
//!   under the same ticket (build-outside/persist-inside is the TOCTOU).
//!
//! Deliberate exceptions (e.g. recovery, which republishes sequence
//! numbers single-threaded before re-logging) are annotated with
//! `// lsm-lint: allow(durability-order)` *plus a rationale* — a bare
//! marker is rejected as L0 `bad-allow`.
//!
//! The verified protocol is emitted as `durability_order.json` (see
//! [`DurabilityReport::spec_json`]), checked in at the workspace root as a
//! sibling of `lock_order.json`.

use std::collections::HashMap;

use crate::lockgraph::{crate_of, for_each_fn, is_engine_file, receiver_self_root, CALL_KEYWORDS};
use crate::{test_regions, tokenize, Diagnostic, Rule, Token};

/// Receiver idents whose `.append(..)`/`.sync()` calls are WAL writes.
const WAL_RECEIVERS: &[&str] = &["writer"];

/// Receiver idents whose `.create_appendable()`/`.put_meta(..)` calls hit
/// the storage backend.
const BACKEND_RECEIVERS: &[&str] = &["backend"];

/// The meta key under which the manifest is persisted.
const MANIFEST_KEYS: &[&str] = &["MANIFEST_META"];

/// Atomic fields whose `.store(..)` publishes the visible sequence number.
const SEQNO_FIELDS: &[&str] = &["seqno"];

/// Atomic fields whose `.store(..)` acknowledges a waiting writer.
const ACK_FLAGS: &[&str] = &["done"];

/// Condvars whose notification wakes committed writers (acks). The worker
/// and stall condvars are scheduling signals, not commit acknowledgments.
const ACK_CONDVARS: &[&str] = &["commit_cv"];

/// Calls that build a manifest snapshot from the current version state.
const MANIFEST_BUILDERS: &[&str] = &["build_manifest", "manifest_from"];

/// The durability effect classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EffectKind {
    WalAppend,
    WalSync,
    WalSegmentCreate,
    ManifestBuild,
    ManifestPersist,
    SeqnoPublish,
    Ack,
}

impl EffectKind {
    fn label(self) -> &'static str {
        match self {
            EffectKind::WalAppend => "wal_append",
            EffectKind::WalSync => "wal_sync",
            EffectKind::WalSegmentCreate => "wal_segment_create",
            EffectKind::ManifestBuild => "manifest_build",
            EffectKind::ManifestPersist => "manifest_persist",
            EffectKind::SeqnoPublish => "seqno_publish",
            EffectKind::Ack => "ack",
        }
    }

    /// Whether this effect makes state observable (D1/D2's subject).
    fn is_visibility(self) -> bool {
        matches!(self, EffectKind::SeqnoPublish | EffectKind::Ack)
    }
}

/// One effect site, with the lock context D3/D4 need.
#[derive(Clone, Debug)]
struct Effect {
    kind: EffectKind,
    line: usize,
    /// Per-function id of the innermost live `mem` guard, if any.
    mem_guard: Option<usize>,
    /// Whether the `manifest_mx` ticket is held at the site.
    under_manifest: bool,
}

/// One entry of a function's ordered effect sequence.
enum Item {
    Effect(Effect),
    Call { name: String },
}

/// Per-function effect summary.
struct FnEffects {
    crate_name: String,
    name: String,
    file: String,
    items: Vec<Item>,
}

/// An effect in a flattened (call-inlined) sequence.
#[derive(Clone, Debug)]
struct FlatEffect {
    kind: EffectKind,
    file: String,
    line: usize,
}

/// One function's durability profile, as emitted into the spec: its direct
/// effects in source order, with `call:<fn>` markers where it delegates to
/// another effectful function.
#[derive(Clone, Debug)]
pub struct FnSpec {
    /// Crate the function lives in.
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// Effect labels / call markers in source order.
    pub effects: Vec<String>,
}

/// The outcome of the durability-order analysis.
#[derive(Debug, Default)]
pub struct DurabilityReport {
    /// Every function with durability effects (direct or via calls).
    pub functions: Vec<FnSpec>,
    /// L7 findings (not yet allow-filtered).
    pub diagnostics: Vec<Diagnostic>,
}

impl DurabilityReport {
    /// Renders the checked-in `durability_order.json` spec: the rules and
    /// every effectful function's effect sequence. Deterministic (sorted)
    /// and line-number-free so it only changes when the protocol does.
    pub fn spec_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
        let rules: &[(&str, &str)] = &[
            ("D1", "no seqno_publish/ack before the group's wal_append"),
            (
                "D2",
                "no seqno_publish/ack between wal_append and its wal_sync on sync paths",
            ),
            (
                "D3",
                "mem stays held from wal_segment_create until a manifest_persist names the segment",
            ),
            (
                "D4",
                "manifest build and put_meta are atomic under manifest_mx",
            ),
        ];
        for (i, (id, check)) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{id}\", \"check\": \"{check}\"}}"
            ));
        }
        out.push_str("\n  ],\n  \"functions\": [");
        let mut fns: Vec<&FnSpec> = self.functions.iter().collect();
        fns.sort_by(|a, b| {
            (&a.crate_name, &a.name, &a.file).cmp(&(&b.crate_name, &b.name, &b.file))
        });
        for (i, f) in fns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let effects: Vec<String> = f.effects.iter().map(|e| format!("\"{e}\"")).collect();
            out.push_str(&format!(
                "\n    {{\"crate\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"effects\": [{}]}}",
                f.crate_name,
                f.name,
                f.file,
                effects.join(", "),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Whether the durability protocol applies to this file: the commit
/// pipeline (`lsm-core`) and the WAL/storage substrate (`lsm-storage`).
fn is_protocol_file(path: &str) -> bool {
    is_engine_file(path) && matches!(crate_of(path), "lsm-core" | "lsm-storage")
}

/// Runs the durability-order analysis over `(workspace-relative path,
/// source)` pairs.
pub fn analyze(files: &[(String, String)]) -> DurabilityReport {
    let mut report = DurabilityReport::default();

    // Pass 1: per-function effect sequences.
    let mut fns: Vec<FnEffects> = Vec::new();
    for (path, source) in files {
        if !is_protocol_file(path) {
            continue;
        }
        let tokens = tokenize(source);
        let test = test_regions(&tokens);
        let crate_name = crate_of(path).to_string();
        for_each_fn(&tokens, &test, |name, _sig, body| {
            fns.push(walk_fn(path, &crate_name, name, &tokens, body));
        });
    }

    // Unambiguous call resolution: a name is followed only when it maps to
    // exactly one function in the crate.
    let mut name_count: HashMap<(String, String), usize> = HashMap::new();
    for f in &fns {
        *name_count
            .entry((f.crate_name.clone(), f.name.clone()))
            .or_insert(0) += 1;
    }
    let unique: HashMap<(String, String), usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| name_count[&(f.crate_name.clone(), f.name.clone())] == 1)
        .map(|(i, f)| ((f.crate_name.clone(), f.name.clone()), i))
        .collect();

    // Transitive effectfulness (monotone fixpoint over unique calls).
    let mut effectful: Vec<bool> = fns
        .iter()
        .map(|f| f.items.iter().any(|i| matches!(i, Item::Effect(_))))
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            if effectful[i] {
                continue;
            }
            let hit = f.items.iter().any(|item| match item {
                Item::Call { name } => unique
                    .get(&(f.crate_name.clone(), name.clone()))
                    .is_some_and(|&c| effectful[c]),
                Item::Effect(_) => false,
            });
            if hit {
                effectful[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 2: D1/D2 over flattened sequences, D3/D4 over direct effects.
    let mut memo: HashMap<usize, Vec<FlatEffect>> = HashMap::new();
    for i in 0..fns.len() {
        let flat = flatten(i, &fns, &unique, &mut memo, &mut Vec::new());
        check_visibility_rules(&flat, &mut report.diagnostics);
        check_segment_and_manifest_rules(&fns[i], &mut report.diagnostics);
    }

    // Identical violations re-derived through callers collapse to one.
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    report
        .diagnostics
        .dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);

    // The spec: every effectful function's direct sequence.
    for (i, f) in fns.iter().enumerate() {
        if !effectful[i] {
            continue;
        }
        let mut effects = Vec::new();
        for item in &f.items {
            match item {
                Item::Effect(e) => effects.push(e.kind.label().to_string()),
                Item::Call { name } => {
                    let followed = unique
                        .get(&(f.crate_name.clone(), name.clone()))
                        .is_some_and(|&c| effectful[c]);
                    if followed {
                        effects.push(format!("call:{name}"));
                    }
                }
            }
        }
        report.functions.push(FnSpec {
            crate_name: f.crate_name.clone(),
            name: f.name.clone(),
            file: f.file.clone(),
            effects,
        });
    }
    report
}

/// D1/D2 over one function's flattened effect sequence.
fn check_visibility_rules(flat: &[FlatEffect], diags: &mut Vec<Diagnostic>) {
    for (pos, e) in flat.iter().enumerate() {
        if !e.kind.is_visibility() {
            continue;
        }
        let prior_append = flat[..pos]
            .iter()
            .rposition(|x| x.kind == EffectKind::WalAppend);
        let later_append = flat[pos + 1..]
            .iter()
            .find(|x| x.kind == EffectKind::WalAppend);
        match prior_append {
            // D1: the visibility effect fires before the group's append.
            None => {
                if let Some(append) = later_append {
                    diags.push(Diagnostic {
                        rule: Rule::DurabilityOrder,
                        path: e.file.clone(),
                        line: e.line,
                        message: format!(
                            "`{}` happens before the group's `wal_append` ({}:{}); \
                             nothing may become visible before the WAL write (rule D1)",
                            e.kind.label(),
                            append.file,
                            append.line,
                        ),
                    });
                }
            }
            // D2: between the append and the sync that makes it durable.
            Some(a) => {
                let sync_between = flat[a + 1..pos]
                    .iter()
                    .any(|x| x.kind == EffectKind::WalSync);
                let sync_after = flat[pos + 1..]
                    .iter()
                    .find(|x| x.kind == EffectKind::WalSync);
                if !sync_between {
                    if let Some(sync) = sync_after {
                        diags.push(Diagnostic {
                            rule: Rule::DurabilityOrder,
                            path: e.file.clone(),
                            line: e.line,
                            message: format!(
                                "`{}` happens between `wal_append` ({}:{}) and its \
                                 `wal_sync` ({}:{}); on sync paths acknowledgment must \
                                 follow the fsync (rule D2)",
                                e.kind.label(),
                                flat[a].file,
                                flat[a].line,
                                sync.file,
                                sync.line,
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// D3/D4 over one function's direct effects (lock context is per-function).
fn check_segment_and_manifest_rules(f: &FnEffects, diags: &mut Vec<Diagnostic>) {
    let effects: Vec<&Effect> = f
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Effect(e) => Some(e),
            Item::Call { .. } => None,
        })
        .collect();

    // D3: a segment created under `mem` must be named by a manifest persist
    // before that same guard is released.
    for (pos, e) in effects.iter().enumerate() {
        if e.kind != EffectKind::WalSegmentCreate {
            continue;
        }
        let Some(guard) = e.mem_guard else { continue };
        let named = effects[pos + 1..]
            .iter()
            .any(|p| p.kind == EffectKind::ManifestPersist && p.mem_guard == Some(guard));
        if !named {
            diags.push(Diagnostic {
                rule: Rule::DurabilityOrder,
                path: f.file.clone(),
                line: e.line,
                message: "fresh WAL segment created under `mem`, but `mem` is released \
                          before a `manifest_persist` names the segment; writers can \
                          append into a segment recovery will never find (rule D3)"
                    .into(),
            });
        }
    }

    // D4: persists under the ticket; in a persisting function, builds too.
    let persists = effects
        .iter()
        .any(|e| e.kind == EffectKind::ManifestPersist);
    for e in &effects {
        match e.kind {
            EffectKind::ManifestPersist if !e.under_manifest => diags.push(Diagnostic {
                rule: Rule::DurabilityOrder,
                path: f.file.clone(),
                line: e.line,
                message: "manifest `put_meta` outside the `manifest_mx` ticket; \
                          concurrent persists can interleave build and write and a \
                          stale manifest can overwrite a fresh one (rule D4)"
                    .into(),
            }),
            EffectKind::ManifestBuild if persists && !e.under_manifest => diags.push(Diagnostic {
                rule: Rule::DurabilityOrder,
                path: f.file.clone(),
                line: e.line,
                message: "manifest built outside the `manifest_mx` ticket that \
                              persists it; the build/persist pair must be atomic or a \
                              concurrent freeze is silently dropped (rule D4)"
                    .into(),
            }),
            _ => {}
        }
    }
}

/// Inlines unique intra-crate callees into one ordered effect sequence.
/// Recursive back-edges contribute nothing (the protocol functions are not
/// recursive; this is a termination guard, not a semantics claim).
fn flatten(
    idx: usize,
    fns: &[FnEffects],
    unique: &HashMap<(String, String), usize>,
    memo: &mut HashMap<usize, Vec<FlatEffect>>,
    visiting: &mut Vec<usize>,
) -> Vec<FlatEffect> {
    if let Some(done) = memo.get(&idx) {
        return done.clone();
    }
    if visiting.contains(&idx) {
        return Vec::new();
    }
    visiting.push(idx);
    let f = &fns[idx];
    let mut out = Vec::new();
    for item in &f.items {
        match item {
            Item::Effect(e) => out.push(FlatEffect {
                kind: e.kind,
                file: f.file.clone(),
                line: e.line,
            }),
            Item::Call { name } => {
                if let Some(&callee) = unique.get(&(f.crate_name.clone(), name.clone())) {
                    if callee != idx {
                        out.extend(flatten(callee, fns, unique, memo, visiting));
                    }
                }
            }
        }
    }
    visiting.pop();
    memo.insert(idx, out.clone());
    out
}

/// A live `mem`/`manifest_mx` guard in the walker.
struct DGuard {
    /// `true` for `mem`, `false` for `manifest_mx`.
    is_mem: bool,
    /// Per-function guard identity (D3 matches create/persist guards).
    id: usize,
    /// Binding name, for `drop(name)` tracking.
    name: Option<String>,
    /// Brace depth of the binding.
    depth: i64,
    /// Expression temporary: dies at the next `;`.
    temp: bool,
}

/// Walks one function body, collecting its ordered durability effects with
/// `mem`/`manifest_mx` guard context. The scoping machinery mirrors the
/// lock-graph walker: let-bound guards live until scope exit or
/// `drop(guard)`, temporaries until the end of the statement.
#[allow(clippy::too_many_lines)]
fn walk_fn(
    path: &str,
    crate_name: &str,
    fn_name: &str,
    toks: &[Token],
    body: std::ops::Range<usize>,
) -> FnEffects {
    let mut out = FnEffects {
        crate_name: crate_name.to_string(),
        name: fn_name.to_string(),
        file: path.to_string(),
        items: Vec::new(),
    };
    let mut guards: Vec<DGuard> = Vec::new();
    let mut next_guard = 0usize;
    let mut depth = 0i64;
    let mut stmt_start = true;
    let mut pending_let: Option<String> = None;

    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");

    let mut i = body.start;
    while i < body.end {
        let t = toks[i].text.as_str();
        match t {
            "{" => {
                depth += 1;
                stmt_start = true;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth && !g.temp);
                stmt_start = true;
                pending_let = None;
                i += 1;
                continue;
            }
            ";" => {
                guards.retain(|g| !g.temp);
                stmt_start = true;
                pending_let = None;
                i += 1;
                continue;
            }
            _ => {}
        }

        if t == "drop" && text(i + 1) == "(" {
            if let Some(victim) = toks.get(i + 2).map(|t| t.text.clone()) {
                guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            }
            i += 1;
            continue;
        }

        if stmt_start && t == "let" {
            let mut j = i + 1;
            if text(j) == "mut" {
                j += 1;
            }
            if let Some(id) = toks.get(j).map(|t| t.text.clone()) {
                let simple = id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if simple && text(j + 1) == "=" {
                    pending_let = Some(id);
                }
            }
            stmt_start = false;
            i += 1;
            continue;
        }

        if t == "." {
            let m = text(i + 1);
            let open = text(i + 2) == "(";
            let argless = open && text(i + 3) == ")";
            let recv = toks
                .get(i.wrapping_sub(1))
                .map(|t| t.text.as_str())
                .unwrap_or("");
            let line = chain_root_line(toks, i);

            // Tracked-lock acquisition: only `mem` and `manifest_mx`
            // matter to the protocol.
            if argless && matches!(m, "lock" | "read" | "write") {
                let is_mem = recv == "mem";
                let is_manifest = recv == "manifest_mx";
                if is_mem || is_manifest {
                    let terminal = match text(i + 4) {
                        ";" => true,
                        "." => {
                            matches!(text(i + 5), "unwrap" | "expect")
                                && text(i + 6) == "("
                                && forward_close(toks, i + 6)
                                    .is_some_and(|close| text(close + 1) == ";")
                        }
                        _ => false,
                    };
                    let name = match (&pending_let, terminal) {
                        (Some(n), true) if n != "_" => Some(n.clone()),
                        _ => None,
                    };
                    guards.push(DGuard {
                        is_mem,
                        id: next_guard,
                        temp: name.is_none(),
                        name,
                        depth,
                    });
                    next_guard += 1;
                }
                i += 4;
                stmt_start = false;
                continue;
            }

            // Effect classification.
            let kind = if open
                && matches!(m, "append" | "append_records")
                && WAL_RECEIVERS.contains(&recv)
            {
                Some(EffectKind::WalAppend)
            } else if argless && m == "sync" && WAL_RECEIVERS.contains(&recv) {
                Some(EffectKind::WalSync)
            } else if open && m == "create_appendable" && BACKEND_RECEIVERS.contains(&recv) {
                Some(EffectKind::WalSegmentCreate)
            } else if open
                && m == "put_meta"
                && BACKEND_RECEIVERS.contains(&recv)
                && MANIFEST_KEYS.contains(&text(i + 3))
            {
                Some(EffectKind::ManifestPersist)
            } else if open && m == "store" && SEQNO_FIELDS.contains(&recv) {
                Some(EffectKind::SeqnoPublish)
            } else if open
                && ((m == "store" && ACK_FLAGS.contains(&recv))
                    || (matches!(m, "notify_all" | "notify_one") && ACK_CONDVARS.contains(&recv)))
            {
                Some(EffectKind::Ack)
            } else if open && MANIFEST_BUILDERS.contains(&m) {
                Some(EffectKind::ManifestBuild)
            } else {
                None
            };
            if let Some(kind) = kind {
                out.items.push(Item::Effect(Effect {
                    kind,
                    line,
                    mem_guard: guards.iter().rev().find(|g| g.is_mem).map(|g| g.id),
                    under_manifest: guards.iter().any(|g| !g.is_mem),
                }));
                i += 2;
                stmt_start = false;
                continue;
            }

            // Ordinary `self`-rooted method call: propagation candidate.
            if open
                && !m.is_empty()
                && m.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && receiver_self_root(toks, i).is_some()
            {
                out.items.push(Item::Call {
                    name: m.to_string(),
                });
            }
            i += 2;
            stmt_start = false;
            continue;
        }

        // Free calls: `ident (` not preceded by `.`, `fn`, or `::` (a
        // path-qualified call names another type's function — following it
        // by bare name would fabricate effect edges).
        if text(i + 1) == "("
            && !CALL_KEYWORDS.contains(&t)
            && t.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && toks
                .get(i.wrapping_sub(1))
                .map(|p| !matches!(p.text.as_str(), "." | "fn" | "::"))
                .unwrap_or(true)
        {
            if MANIFEST_BUILDERS.contains(&t) {
                out.items.push(Item::Effect(Effect {
                    kind: EffectKind::ManifestBuild,
                    line: toks[i].line,
                    mem_guard: guards.iter().rev().find(|g| g.is_mem).map(|g| g.id),
                    under_manifest: guards.iter().any(|g| !g.is_mem),
                }));
            } else {
                out.items.push(Item::Call {
                    name: t.to_string(),
                });
            }
        }

        stmt_start = false;
        i += 1;
    }
    out
}

/// Line of the outermost token of the receiver chain ending at `dot_idx`,
/// so effects anchor where the statement starts and rustfmt's
/// chain-splitting cannot strand an allow-comment. (Shared with the L8
/// atomics pass, which anchors its sites the same way.)
pub(crate) fn chain_root_line(toks: &[Token], dot_idx: usize) -> usize {
    let fallback = toks[dot_idx].line;
    let mut j = match dot_idx.checked_sub(1) {
        Some(j) => j,
        None => return fallback,
    };
    loop {
        let t = toks[j].text.as_str();
        let is_ident = !t.is_empty() && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !is_ident {
            return fallback;
        }
        match j.checked_sub(1) {
            Some(p) if toks[p].text == "." => match p.checked_sub(1) {
                Some(pp) => j = pp,
                None => return toks[j].line,
            },
            _ => return toks[j].line,
        }
    }
}

/// Index of the `)` matching the `(` at `open_idx`.
pub(crate) fn forward_close(toks: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == "(" {
            depth += 1;
        } else if t.text == ")" {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
