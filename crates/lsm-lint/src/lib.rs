//! Architectural static analysis for the lsm-lab workspace.
//!
//! The engine's measurability rests on a few seams staying clean: every byte
//! of I/O must flow through the `lsm-storage` backend (so fault injection and
//! per-primitive accounting see it), hot paths must propagate errors instead
//! of panicking, and the design-space knobs must stay documented. This crate
//! machine-checks those seams:
//!
//! - **L1 `fs-boundary`** — no direct `std::fs` / `File::open` /
//!   `OpenOptions` usage outside `lsm-storage`.
//! - **L2 `no-panic`** — no `unwrap()` / `expect()` / `panic!` in non-test
//!   code of the hot-path crates (`lsm-core`, `lsm-sstable`,
//!   `lsm-compaction`, `lsm-wisckey`).
//! - **L3 `lock-nesting`** — no *raw* (untracked) lock acquired while
//!   another raw lock's guard is live, across statements (guard-liveness
//!   tracked; `lsm-sync` tracked locks are governed by L5 instead).
//! - **L4 `knob-docs`** — every public field of the options/config structs
//!   carries a doc comment naming its design-space knob.
//! - **L5 `lock-order`** — the workspace lock graph (see [`lockgraph`])
//!   must be acyclic and consistent with the rank hierarchy declared in
//!   `lsm-sync::ranks`; every tracked lock must bind to a rank constant.
//! - **L6 `io-under-lock`** — no blocking backend I/O while a lock guard
//!   is live, unless annotated with a rationale.
//! - **L7 `durability-order`** — the durable-before-visible commit protocol
//!   (see [`durability`]): no `seqno_publish`/`ack` before the group's
//!   `wal_append` (and `wal_sync` on sync paths), no release of `mem`
//!   before the `manifest_persist` that names a fresh WAL segment, and
//!   manifest build + `put_meta` atomic under `manifest_mx`.
//! - **L8 `atomics-order`** — the publication protocol of the lock-free
//!   layer (see [`atomics`]): publication stores `Release`-or-stronger and
//!   their consume loads `Acquire`-or-stronger (A1), `SeqCst` only with an
//!   annotated rationale (A2), no `Relaxed` load gating reads of non-atomic
//!   fields (A3), and standalone fences naming their pairing site (A4).
//! - **L0 `bad-allow`** — a malformed suppression: an unknown rule name in
//!   an allow-comment, or `allow(durability-order)` /
//!   `allow(atomics-order)` without a rationale.
//!
//! Diagnostics can be suppressed with `// lsm-lint: allow(<rule>)` on the
//! same line or the line above; `<rule>` is the `L<n>` id or the kebab name.
//! Unknown rule names are rejected (L0), and `allow(durability-order)` /
//! `allow(atomics-order)` additionally require a rationale: a plain `//`
//! comment on the line above the marker, or prose after the closing
//! parenthesis.
//! Since the build container is offline, parsing is done by a small
//! hand-rolled tokenizer rather than `syn`; it understands strings, raw
//! strings, char literals, lifetimes, and nested block comments, and tracks
//! `#[cfg(test)]` / `#[test]` regions by brace depth.

pub mod atomics;
pub mod durability;
pub mod lockgraph;

pub use atomics::AtomicsReport;
pub use durability::DurabilityReport;
pub use lockgraph::{CondvarInfo, LockEdge, LockGraph, LockInfo};

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// The rules enforced by the linter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1: file-system access outside the storage substrate.
    FsBoundary,
    /// L2: panicking call in a hot-path crate.
    NoPanic,
    /// L3: raw lock acquired while another raw guard is live.
    LockNesting,
    /// L4: undocumented public knob field.
    KnobDocs,
    /// L5: lock-order hierarchy violation (bad edge, cycle, or unbound
    /// tracked lock).
    LockOrder,
    /// L6: blocking backend I/O while a lock guard is held.
    IoUnderLock,
    /// L7: durable-before-visible ordering violation in the commit
    /// protocol.
    DurabilityOrder,
    /// L8: atomics-publication violation in the lock-free layer (A1–A4).
    AtomicsOrder,
    /// L0: malformed `lsm-lint: allow(..)` marker (unknown rule, or a
    /// durability/atomics exemption without a rationale). Not itself
    /// allowable.
    BadAllow,
}

impl Rule {
    /// All rules, in L-number order.
    pub const ALL: [Rule; 9] = [
        Rule::BadAllow,
        Rule::FsBoundary,
        Rule::NoPanic,
        Rule::LockNesting,
        Rule::KnobDocs,
        Rule::LockOrder,
        Rule::IoUnderLock,
        Rule::DurabilityOrder,
        Rule::AtomicsOrder,
    ];

    /// The short `L<n>` identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::BadAllow => "L0",
            Rule::FsBoundary => "L1",
            Rule::NoPanic => "L2",
            Rule::LockNesting => "L3",
            Rule::KnobDocs => "L4",
            Rule::LockOrder => "L5",
            Rule::IoUnderLock => "L6",
            Rule::DurabilityOrder => "L7",
            Rule::AtomicsOrder => "L8",
        }
    }

    /// The human-readable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::BadAllow => "bad-allow",
            Rule::FsBoundary => "fs-boundary",
            Rule::NoPanic => "no-panic",
            Rule::LockNesting => "lock-nesting",
            Rule::KnobDocs => "knob-docs",
            Rule::LockOrder => "lock-order",
            Rule::IoUnderLock => "io-under-lock",
            Rule::DurabilityOrder => "durability-order",
            Rule::AtomicsOrder => "atomics-order",
        }
    }

    /// Parses an id or name as written in an allow-comment.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id(), self.name())
    }
}

/// One finding, anchored to a file and 1-based line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// What was found and why it matters.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// The outcome of linting a tree: what was scanned and what was found.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Findings suppressed by `lsm-lint: allow(..)` markers.
    pub suppressed: usize,
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as a machine-readable JSON document. Schema v2:
    /// totals, per-rule finding counts (`by_rule`, non-zero rules only, in
    /// L-number order), then the diagnostics sorted by (path, line, rule)
    /// so CI diffs are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n");
        out.push_str(&format!(
            "  \"files_checked\": {},\n  \"violations\": {},\n  \"suppressed\": {},\n",
            self.files_checked,
            self.diagnostics.len(),
            self.suppressed,
        ));
        out.push_str("  \"by_rule\": {");
        let mut first = true;
        for rule in Rule::ALL {
            let count = self.diagnostics.iter().filter(|d| d.rule == rule).count();
            if count == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {count}", rule.id()));
        }
        out.push_str("},\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                d.rule.id(),
                d.rule.name(),
                json_escape(&d.path),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Crates whose `src/` is allowed to touch `std::fs` directly: the storage
/// substrate itself (including the fault-injection wrapper `FaultBackend`
/// in `crates/lsm-storage/src/fault.rs`, which must live behind the same
/// boundary it perturbs), plus offline vendor stand-ins and this linter.
const L1_EXEMPT_CRATES: &[&str] = &["lsm-storage", "lsm-lint"];

/// Crates whose non-test code must not panic (read/compaction hot paths).
const L2_HOT_CRATES: &[&str] = &["lsm-core", "lsm-sstable", "lsm-compaction", "lsm-wisckey"];

/// Files whose public struct fields must each carry a doc comment.
const L4_KNOB_FILES: &[&str] = &[
    "crates/lsm-core/src/options.rs",
    "crates/lsm-compaction/src/config.rs",
];

/// Lints every `.rs` file under `root`, skipping `target/`, `vendor/`,
/// hidden directories, and this crate's own sources and fixtures.
pub fn lint_tree(root: &Path) -> std::io::Result<LintReport> {
    lint_tree_full(root).map(|(report, _)| report)
}

/// Like [`lint_tree`], but also returns the workspace [`LockGraph`] so
/// callers can emit or verify the `lock_order.json` spec.
pub fn lint_tree_full(root: &Path) -> std::io::Result<(LintReport, LockGraph)> {
    lint_tree_all(root).map(|(report, graph, _, _)| (report, graph))
}

/// The full analysis: the lint report, the workspace [`LockGraph`]
/// (`lock_order.json`), the [`DurabilityReport`]
/// (`durability_order.json`), and the [`AtomicsReport`]
/// (`atomics_order.json`).
pub fn lint_tree_all(
    root: &Path,
) -> std::io::Result<(LintReport, LockGraph, DurabilityReport, AtomicsReport)> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for rel in paths {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel.replace('\\', "/"), source));
    }

    let mut report = LintReport {
        files_checked: files.len(),
        ..LintReport::default()
    };
    let mut allows_by_file: HashMap<&str, HashMap<usize, Vec<Rule>>> = HashMap::new();
    for (path, source) in &files {
        allows_by_file.insert(path, collect_allows(path, source).by_line);
        let (diags, suppressed) = per_file_diags(path, source);
        report.diagnostics.extend(diags);
        report.suppressed += suppressed;
    }

    let graph = lockgraph::analyze(&files);
    let durability = durability::analyze(&files);
    let atomics = atomics::analyze(&files);
    let analysis_diags = graph
        .diagnostics
        .iter()
        .chain(durability.diagnostics.iter())
        .chain(atomics.diagnostics.iter());
    for d in analysis_diags {
        let suppressed = allows_by_file
            .get(d.path.as_str())
            .is_some_and(|allows| allowed(allows, d.rule, d.line));
        if suppressed {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d.clone());
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
    Ok((report, graph, durability, atomics))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" {
                continue;
            }
            // The linter's own sources and violation fixtures are not part
            // of the engine; lint them only when pointed at directly.
            if name == "lsm-lint" && dir.file_name().is_some_and(|d| d == "crates") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints one file's source text. `rel_path` is the workspace-relative path
/// (forward slashes); it determines which crate's rules apply. Includes a
/// single-file lock-graph pass (L3/L5/L6); for cross-file lock-order
/// analysis use [`lint_tree`].
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::classify(rel_path);
    let allows = collect_allows(rel_path, source);
    let (mut diags, _) = per_file_diags(rel_path, source);
    if ctx.check_l3 {
        // Single-file lock-graph pass for raw-lock nesting. (The workspace
        // pass in `lint_tree` supersedes this with cross-file resolution —
        // this entry point sees one file, so tracked locks declared
        // elsewhere in the crate are unknown to it.)
        let single = lockgraph::analyze(&[(rel_path.to_string(), source.to_string())]);
        diags.extend(
            single
                .diagnostics
                .into_iter()
                .filter(|d| matches!(d.rule, Rule::LockNesting)),
        );
    }
    diags.retain(|d| d.rule == Rule::BadAllow || !allowed(&allows.by_line, d.rule, d.line));
    diags.sort_by(|a, b| (a.line, a.rule.id()).cmp(&(b.line, b.rule.id())));
    diags
}

/// The strictly per-file rules (L1/L2/L4), allow-filtered, plus any L0
/// `bad-allow` findings (never filtered: a malformed marker cannot excuse
/// itself). Lock-graph rules (L3/L5/L6) come from [`lockgraph::analyze`],
/// L7 from [`durability::analyze`], L8 from [`atomics::analyze`]. Returns
/// (remaining diagnostics, suppressed count).
fn per_file_diags(rel_path: &str, source: &str) -> (Vec<Diagnostic>, usize) {
    let ctx = FileContext::classify(rel_path);
    let allows = collect_allows(rel_path, source);
    let tokens = tokenize(source);
    let test_lines = test_regions(&tokens);

    let mut diags = Vec::new();
    if ctx.check_l1 || ctx.check_l2 {
        check_token_rules(rel_path, &ctx, &tokens, &test_lines, &mut diags);
    }
    if ctx.check_l4 {
        check_knob_docs(rel_path, source, &mut diags);
    }
    let before = diags.len();
    diags.retain(|d| !allowed(&allows.by_line, d.rule, d.line));
    let suppressed = before - diags.len();
    diags.extend(allows.bad.iter().cloned());
    (diags, suppressed)
}

/// Which rules apply to a given file, derived from its path.
struct FileContext {
    check_l1: bool,
    check_l2: bool,
    check_l3: bool,
    check_l4: bool,
}

impl FileContext {
    fn classify(rel_path: &str) -> FileContext {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("lsm-lab");
        // Integration tests, benches, and examples are exercise code, not
        // the engine: the architectural rules target library sources only.
        let non_engine = rel_path
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "fixtures");
        FileContext {
            check_l1: !non_engine && !L1_EXEMPT_CRATES.contains(&crate_name),
            check_l2: !non_engine && L2_HOT_CRATES.contains(&crate_name),
            check_l3: !non_engine,
            check_l4: L4_KNOB_FILES.iter().any(|f| rel_path.ends_with(f)),
        }
    }
}

// ---------------------------------------------------------------------------
// Allow-comments
// ---------------------------------------------------------------------------

/// The parsed suppression markers of one file: line → allowed rules, plus
/// the L0 findings for malformed markers (unknown rule names, missing
/// durability rationales). A malformed entry is *not* honored.
struct Allows {
    by_line: HashMap<usize, Vec<Rule>>,
    bad: Vec<Diagnostic>,
}

/// Scans raw lines for `lsm-lint: allow(<rule>[, <rule>...])` markers.
/// Unknown rule names and `allow(durability-order)` /
/// `allow(atomics-order)` without a rationale are reported as L0
/// `bad-allow` and ignored; L0 itself cannot be suppressed (an allow-list
/// naming `bad-allow` is malformed).
fn collect_allows(rel_path: &str, source: &str) -> Allows {
    let lines: Vec<&str> = source.lines().collect();
    let mut allows = Allows {
        by_line: HashMap::new(),
        bad: Vec::new(),
    };
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = line.find("lsm-lint:") else {
            continue;
        };
        // Doc comments (`///`, `//!`) talk *about* markers — e.g. a module
        // doc quoting the `allow(...)` syntax — and never carry one.
        let before = &line[..pos];
        if let Some(c) = before.find("//") {
            if matches!(before.as_bytes().get(c + 2), Some(b'/') | Some(b'!')) {
                continue;
            }
        }
        let rest = line[pos + "lsm-lint:".len()..].trim_start();
        let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        for item in list.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match Rule::parse(item) {
                None => allows.bad.push(Diagnostic {
                    rule: Rule::BadAllow,
                    path: rel_path.into(),
                    line: idx + 1,
                    message: format!(
                        "unknown rule `{item}` in `lsm-lint: allow(...)`; known rules: {}",
                        known_rules(),
                    ),
                }),
                Some(Rule::BadAllow) => allows.bad.push(Diagnostic {
                    rule: Rule::BadAllow,
                    path: rel_path.into(),
                    line: idx + 1,
                    message: "`bad-allow` (L0) cannot be suppressed; fix the malformed \
                              marker it points at instead"
                        .into(),
                }),
                Some(r @ (Rule::DurabilityOrder | Rule::AtomicsOrder))
                    if !has_rationale(&lines, idx, rest) =>
                {
                    allows.bad.push(Diagnostic {
                        rule: Rule::BadAllow,
                        path: rel_path.into(),
                        line: idx + 1,
                        message: format!(
                            "`allow({})` requires a rationale: explain why the \
                             ordering is safe in a `//` comment on the line above \
                             the marker, or after the closing parenthesis",
                            r.name()
                        ),
                    });
                }
                Some(rule) => allows.by_line.entry(idx + 1).or_default().push(rule),
            }
        }
    }
    allows
}

/// The rule names an allow-comment may use, for the L0 message.
fn known_rules() -> String {
    Rule::ALL
        .into_iter()
        .filter(|r| *r != Rule::BadAllow)
        .map(Rule::name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Whether the rationale-requiring marker (`allow(durability-order)` /
/// `allow(atomics-order)`) on `lines[idx]` carries one: prose after the
/// marker's closing parenthesis, or a plain `//` comment (not itself a
/// marker) on the line above.
fn has_rationale(lines: &[&str], idx: usize, rest_after_colon: &str) -> bool {
    if let Some(close) = rest_after_colon.find(')') {
        let trailing = rest_after_colon[close + 1..]
            .trim_start_matches(['-', ':', ';', ',', '.', '—', ' '].as_slice());
        if trailing.chars().any(|c| c.is_alphabetic()) {
            return true;
        }
    }
    let Some(prev) = idx.checked_sub(1).and_then(|i| lines.get(i)) else {
        return false;
    };
    let prev = prev.trim_start();
    prev.starts_with("//")
        && !prev.contains("lsm-lint:")
        && prev
            .trim_start_matches('/')
            .chars()
            .any(|c| c.is_alphabetic())
}

/// An allow on line `n` suppresses findings on line `n` and line `n + 1`,
/// so the marker can sit at the end of the offending line or just above it.
fn allowed(allows: &HashMap<usize, Vec<Rule>>, rule: Rule, line: usize) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| allows.get(l).is_some_and(|rs| rs.contains(&rule)))
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// A lexical token: an identifier/number word, or a punctuation string
/// (`::` is fused; all other punctuation is a single character).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub(crate) text: String,
    pub(crate) line: usize,
}

/// Tokenizes Rust source, discarding comments, string/char literal
/// *contents* (literals become an empty placeholder so argument positions
/// survive), and whitespace. Line numbers are 1-based.
pub(crate) fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                tokens.push(Token {
                    text: "\"\"".into(),
                    line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_literal(&chars, i) => {
                i = skip_raw_or_byte_literal(&chars, i, &mut line);
                tokens.push(Token {
                    text: "\"\"".into(),
                    line,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                let is_lifetime =
                    (next.is_alphabetic() || next == '_') && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    i += 1; // opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 2;
                        // Multi-char escapes (\x41, \u{...}) run to the quote.
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                    } else if i < chars.len() {
                        i += 1;
                    }
                    i += 1; // closing quote
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                tokens.push(Token {
                    text: "::".into(),
                    line,
                });
                i += 2;
            }
            c => {
                tokens.push(Token {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

fn starts_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    // r"...", r#"..."#, b"...", br"...", b'...'
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    matches!(chars.get(j), Some('"')) || (chars[i] == 'b' && chars.get(i + 1) == Some(&'\''))
}

fn skip_raw_or_byte_literal(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    if chars[i] == 'b' {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        // Byte char literal b'x' / b'\n'.
        i += 1;
        if chars.get(i) == Some(&'\\') {
            i += 2;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
        } else {
            i += 1;
        }
        return i + 1;
    }
    if !raw {
        return skip_string(chars, i, line);
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a normal `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

// ---------------------------------------------------------------------------
// Test-region tracking
// ---------------------------------------------------------------------------

/// Marks which tokens live inside test code: a `#[cfg(test)]` or `#[test]`
/// (or any `*test*`-attributed) item, tracked by brace depth. Returns one
/// bool per token.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut depth = 0i64;
    // Depths at which a test region opened; tokens are test code while any
    // region is on the stack.
    let mut region_stack: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i].text;
        if t == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Scan the attribute for a `test` identifier.
            let mut j = i + 2;
            let mut bracket = 1i64;
            let mut has_test = false;
            while j < tokens.len() && bracket > 0 {
                match tokens[j].text.as_str() {
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "test" => has_test = true,
                    _ => {}
                }
                if !region_stack.is_empty() {
                    in_test[j] = true;
                }
                j += 1;
            }
            if has_test {
                pending_attr = true;
            }
            i = j;
            continue;
        }
        match t.as_str() {
            "{" => {
                if pending_attr {
                    region_stack.push(depth);
                    pending_attr = false;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if region_stack.last().is_some_and(|&d| d >= depth) {
                    in_test[i] = true;
                    region_stack.pop();
                    i += 1;
                    continue;
                }
            }
            ";" => {
                // `#[cfg(test)] use ...;` — attribute covered a single
                // brace-less item.
                if pending_attr && region_stack.is_empty() {
                    in_test[i] = true;
                }
                pending_attr = false;
            }
            _ => {}
        }
        if !region_stack.is_empty() || pending_attr {
            in_test[i] = true;
        }
        i += 1;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Token rules: L1, L2
// ---------------------------------------------------------------------------

fn check_token_rules(
    rel_path: &str,
    ctx: &FileContext,
    tokens: &[Token],
    test_lines: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str()).unwrap_or("");

    for i in 0..tokens.len() {
        if test_lines[i] {
            continue;
        }
        let line = tokens[i].line;
        let t = tokens[i].text.as_str();

        if ctx.check_l1 {
            if t == "std" && text(i + 1) == "::" && text(i + 2) == "fs" {
                diags.push(Diagnostic {
                    rule: Rule::FsBoundary,
                    path: rel_path.into(),
                    line,
                    message: "direct `std::fs` access; route I/O through the \
                              `lsm-storage` Backend so accounting and fault \
                              injection see it"
                        .into(),
                });
            } else if t == "File"
                && text(i + 1) == "::"
                && matches!(text(i + 2), "open" | "create" | "create_new" | "options")
            {
                diags.push(Diagnostic {
                    rule: Rule::FsBoundary,
                    path: rel_path.into(),
                    line,
                    message: format!(
                        "direct `File::{}`; route I/O through the `lsm-storage` Backend",
                        text(i + 2)
                    ),
                });
            } else if t == "OpenOptions" {
                diags.push(Diagnostic {
                    rule: Rule::FsBoundary,
                    path: rel_path.into(),
                    line,
                    message: "direct `OpenOptions` usage; route I/O through the \
                              `lsm-storage` Backend"
                        .into(),
                });
            }
        }

        if ctx.check_l2 {
            if t == "." && matches!(text(i + 1), "unwrap" | "expect") && text(i + 2) == "(" {
                diags.push(Diagnostic {
                    rule: Rule::NoPanic,
                    path: rel_path.into(),
                    line,
                    message: format!(
                        "`.{}()` in a hot-path crate; propagate the error \
                         (or annotate with `// lsm-lint: allow(L2)` and a proof)",
                        text(i + 1)
                    ),
                });
            } else if matches!(t, "panic" | "unimplemented" | "todo") && text(i + 1) == "!" {
                diags.push(Diagnostic {
                    rule: Rule::NoPanic,
                    path: rel_path.into(),
                    line,
                    message: format!("`{t}!` in a hot-path crate; return an error instead"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L4: knob documentation
// ---------------------------------------------------------------------------

/// Checks that every `pub` field of every `pub struct` in a knob file is
/// preceded by a `///` doc comment. Works on raw lines so comments survive.
fn check_knob_docs(rel_path: &str, source: &str, diags: &mut Vec<Diagnostic>) {
    let lines: Vec<&str> = source.lines().collect();
    let mut in_struct = false;
    let mut brace_depth = 0i64;
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if !in_struct {
            if line.starts_with("pub struct ") && raw.contains('{') {
                in_struct = true;
                brace_depth = brace_balance(raw);
            }
            continue;
        }
        brace_depth += brace_balance(raw);
        if brace_depth <= 0 {
            in_struct = false;
            continue;
        }
        // A field line at depth 1: `pub name: Type,` (skip methods/impl —
        // structs have no bodies, so depth 1 lines are fields/attrs/comments).
        if brace_depth == 1
            && line.starts_with("pub ")
            && line.contains(':')
            && !line.contains("fn ")
        {
            let mut j = idx;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let prev = lines[j].trim();
                if prev.starts_with("///") {
                    documented = true;
                    break;
                }
                if prev.starts_with("#[") || prev.is_empty() {
                    continue;
                }
                break;
            }
            if !documented {
                let field = line
                    .trim_start_matches("pub ")
                    .split(':')
                    .next()
                    .unwrap_or("?")
                    .trim();
                diags.push(Diagnostic {
                    rule: Rule::KnobDocs,
                    path: rel_path.into(),
                    line: idx + 1,
                    message: format!(
                        "public knob field `{field}` has no doc comment; \
                         document which design-space knob it controls"
                    ),
                });
            }
        }
    }
}

/// Net `{`/`}` balance of a line, ignoring braces inside strings or
/// comments (good enough for struct definitions).
fn brace_balance(line: &str) -> i64 {
    let code = line.split("//").next().unwrap_or(line);
    let mut bal = 0i64;
    let mut in_str = false;
    let mut prev = ' ';
    for c in code.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' if !in_str => bal += 1,
            '}' if !in_str => bal -= 1,
            _ => {}
        }
        prev = c;
    }
    bal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src)
    }

    #[test]
    fn l1_flags_std_fs_outside_storage() {
        let diags = lint(
            "crates/lsm-core/src/db.rs",
            "fn f() { let _ = std::fs::read(\"x\"); }",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::FsBoundary);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn l1_exempts_storage_and_test_code() {
        assert!(lint(
            "crates/lsm-storage/src/backend.rs",
            "fn f() { std::fs::read(\"x\").ok(); }",
        )
        .is_empty());
        assert!(lint(
            "crates/lsm-core/src/db.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { std::fs::read(\"x\").ok(); }\n}\n",
        )
        .is_empty());
        assert!(lint(
            "crates/lsm-core/tests/engine.rs",
            "fn f() { std::fs::read(\"x\").ok(); }",
        )
        .is_empty());
        // The fault-injection backend is part of the storage substrate and
        // inherits the L1 exemption — no per-file escape hatch needed.
        assert!(lint(
            "crates/lsm-storage/src/fault.rs",
            "fn f() { std::fs::remove_file(\"x\").ok(); }",
        )
        .is_empty());
    }

    #[test]
    fn l2_flags_unwrap_in_hot_crates_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint("crates/lsm-core/src/version.rs", src).len(), 1);
        assert_eq!(lint("crates/lsm-sstable/src/block.rs", src).len(), 1);
        assert!(lint("crates/lsm-workload/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l2_ignores_identifiers_containing_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        assert!(lint("crates/lsm-core/src/version.rs", src).is_empty());
    }

    #[test]
    fn l2_flags_panic_macro() {
        let src = "fn f() { panic!(\"boom\"); }";
        let diags = lint("crates/lsm-compaction/src/planner.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::NoPanic);
    }

    #[test]
    fn l3_flags_two_acquisitions_in_one_statement() {
        let src = "fn f() { let x = self.a.lock().merge(other.b.lock()); }";
        let diags = lint("crates/lsm-memtable/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LockNesting);
    }

    #[test]
    fn l3_permits_sequential_statements() {
        let src = "fn f() { let a = self.a.lock(); drop(a); let b = self.b.lock(); }";
        assert!(lint("crates/lsm-memtable/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l3_ignores_read_write_with_args() {
        let src = "fn f() { let x = backend.read(id, 0, 10).and(backend.write(id, buf)); }";
        assert!(lint("crates/lsm-core/src/scan.rs", src).is_empty());
    }

    #[test]
    fn l4_requires_field_docs_in_knob_files() {
        let src = "/// Options.\npub struct Options {\n    /// Documented.\n    pub a: u32,\n    pub b: u32,\n}\n";
        let diags = lint("crates/lsm-core/src/options.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::KnobDocs);
        assert_eq!(diags[0].line, 5);
        // Same content in a non-knob file: no L4.
        assert!(lint("crates/lsm-core/src/other.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lsm-lint: allow(L2)";
        assert!(lint("crates/lsm-core/src/version.rs", same).is_empty());
        let above = "// lsm-lint: allow(no-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(lint("crates/lsm-core/src/version.rs", above).is_empty());
        let wrong_rule = "// lsm-lint: allow(L1)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint("crates/lsm-core/src/version.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = "fn f() { let _ = \"std::fs::read .unwrap() panic!\"; }\n// std::fs in a comment\n/* x.unwrap() */\n";
        assert!(lint("crates/lsm-core/src/db.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_tokenize() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let _ = r#\"std::fs \"quoted\" \"#; x }";
        assert!(lint("crates/lsm-core/src/db.rs", src).is_empty());
    }

    #[test]
    fn json_report_shape() {
        let report = LintReport {
            files_checked: 2,
            suppressed: 0,
            diagnostics: lint(
                "crates/lsm-core/src/db.rs",
                "fn f() { std::fs::read(\"x\").ok(); }",
            ),
        };
        let json = report.to_json();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"files_checked\": 2"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"suppressed\": 0"));
        assert!(json.contains("\"by_rule\": {\"L1\": 1}"));
        assert!(json.contains("\"rule\": \"L1\""));
        assert!(json.contains("\"line\": 1"));
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let src = "// lsm-lint: allow(no-such-rule)\nfn f() {}\n";
        let diags = lint("crates/lsm-core/src/db.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("no-such-rule"));
        assert!(diags[0].message.contains("durability-order"));
    }

    #[test]
    fn bad_allow_cannot_be_suppressed() {
        let src = "// lsm-lint: allow(L0)\n// lsm-lint: allow(typo)\nfn f() {}\n";
        let diags = lint("crates/lsm-core/src/db.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == Rule::BadAllow));
    }

    #[test]
    fn durability_allow_requires_rationale() {
        // Bare marker: rejected, and the allow is not honored.
        let bare = "// lsm-lint: allow(durability-order)\nfn f() {}\n";
        let diags = lint("crates/lsm-core/src/db.rs", bare);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
        assert!(diags[0].message.contains("rationale"));

        // A comment line above the marker is a rationale.
        let above = "// recovery is single-threaded; the WAL is re-logged below\n\
             // lsm-lint: allow(durability-order)\nfn f() {}\n";
        assert!(lint("crates/lsm-core/src/db.rs", above).is_empty());

        // Prose after the closing parenthesis is a rationale.
        let inline = "// lsm-lint: allow(durability-order) — replay path, no readers\nfn f() {}\n";
        assert!(lint("crates/lsm-core/src/db.rs", inline).is_empty());
    }

    #[test]
    fn atomics_allow_requires_rationale() {
        // Bare marker: rejected, and the allow is not honored.
        let bare = "// lsm-lint: allow(atomics-order)\nfn f() {}\n";
        let diags = lint("crates/lsm-core/src/db.rs", bare);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
        assert!(diags[0].message.contains("atomics-order"));
        assert!(diags[0].message.contains("rationale"));

        // A comment line above the marker is a rationale.
        let above = "// counter guards nothing; Relaxed is the protocol\n\
             // lsm-lint: allow(atomics-order)\nfn f() {}\n";
        assert!(lint("crates/lsm-core/src/db.rs", above).is_empty());

        // Prose after the closing parenthesis is a rationale.
        let inline = "// lsm-lint: allow(atomics-order) — init happens before spawn\nfn f() {}\n";
        assert!(lint("crates/lsm-core/src/db.rs", inline).is_empty());
    }
}
