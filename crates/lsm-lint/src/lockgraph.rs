//! Workspace lock-graph analysis.
//!
//! A lightweight symbol-aware pass over the tokenized sources that builds a
//! lock-order graph for the whole workspace and enforces three rules:
//!
//! - **L3 `lock-nesting`** — a *raw* (untracked) lock acquired while another
//!   raw lock's guard is still live, across statements. Tracked
//!   [`OrderedMutex`]/[`OrderedRwLock`] locks are exempt: their nesting is
//!   governed by the rank hierarchy (L5) and asserted at runtime.
//! - **L5 `lock-order`** — any edge of the lock graph that contradicts the
//!   declared hierarchy in `lsm-sync::ranks` (held-lock order must be
//!   strictly less than acquired-lock order), any cycle in the graph, and
//!   any tracked lock field whose rank binding cannot be resolved.
//! - **L6 `io-under-lock`** — blocking backend I/O (`Backend` calls, WAL
//!   writer appends/syncs) performed while any lock guard is live, unless
//!   annotated with `// lsm-lint: allow(io-under-lock)`. The storage
//!   substrate itself (`backend.rs`, `fault.rs`) is exempt — it *is* the
//!   I/O layer.
//!
//! ## How the graph is built
//!
//! 1. The rank table is parsed from `crates/lsm-sync/src/ranks.rs`
//!    (`const NAME: LockRank = LockRank::new("lock.name", order)`).
//! 2. Every `Mutex`/`RwLock`/`OrderedMutex`/`OrderedRwLock` struct field in
//!    engine sources becomes a lock node, identified as `<crate>/<field>`.
//! 3. Tracked fields are bound to rank constants via their construction
//!    sites (`field: OrderedMutex::new(ranks::CONST, ..)`); a file with a
//!    single tracked field and a single un-prefixed construction (the
//!    `Vec<OrderedMutex<_>>` shard pattern) binds by elimination.
//! 4. Function bodies are walked with guard-liveness tracking: let-bound
//!    guards live until scope exit or `drop(guard)`, expression temporaries
//!    until the end of the statement. Acquiring lock B while guard A is
//!    live records edge A → B.
//! 5. Acquisition sets and does-I/O flags propagate through direct
//!    intra-crate calls, but only when the callee name resolves to exactly
//!    one function definition in the crate — ambiguous names (trait
//!    methods, `new`, `insert`, …) are never followed, which keeps dynamic
//!    dispatch from fabricating edges.
//!
//! The resulting hierarchy is emitted as `lock_order.json` (see
//! [`LockGraph::spec_json`]) and checked in at the workspace root.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::{test_regions, tokenize, Diagnostic, Rule, Token};

/// Files allowed to perform I/O while holding their internal locks: the
/// storage substrate serializes file-table access by design.
const L6_EXEMPT_FILES: &[&str] = &[
    "crates/lsm-storage/src/backend.rs",
    "crates/lsm-storage/src/fault.rs",
];

/// Receiver idents whose method calls count as blocking backend I/O.
///
/// Deliberately absent: `obs` (and any other `ObsHandle` binding). The
/// observability layer is atomics-only — `obs.emit(...)`/`obs.timer(...)`
/// never block and sit outside the lock hierarchy — so instrumentation
/// under a lock scope is not I/O-under-lock. Its method names also don't
/// collide with [`IO_METHODS`], so an obs call can never match this rule;
/// the fixture test `obs_calls_under_locks_are_not_io` pins that.
const IO_RECEIVERS: &[&str] = &["backend", "writer", "inner"];

/// Backend methods that are I/O regardless of arity.
const IO_METHODS: &[&str] = &[
    "append",
    "sync",
    "create_appendable",
    "delete",
    "truncate",
    "put_meta",
    "get_meta",
    "list_files",
];

/// Backend methods that are I/O only when called with arguments (argless
/// `.read()`/`.write()` are lock acquisitions, argless `.len()` is `Vec`).
const IO_METHODS_WITH_ARGS: &[&str] = &["read", "write", "len"];

/// Idents that look like calls but are control flow or common macros.
pub(crate) const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "in", "as", "loop", "move", "fn", "let", "else",
    "impl", "where", "unsafe", "break", "continue", "drop", "Some", "None", "Ok", "Err",
];

/// One lock node of the graph.
#[derive(Debug, Clone)]
pub struct LockInfo {
    /// Stable identifier: `<crate>/<field>`.
    pub id: String,
    /// `"mutex"` or `"rwlock"`.
    pub kind: &'static str,
    /// Whether this is a tracked (`Ordered*`) lock.
    pub ordered: bool,
    /// The `lsm_sync::ranks` constant the field is constructed with.
    pub rank_const: Option<String>,
    /// The declared order of that constant.
    pub order: Option<u32>,
    /// File of the field declaration.
    pub file: String,
    /// Line of the field declaration.
    pub line: usize,
}

/// One condvar field and the mutex its wait sites pair it with.
///
/// A `Condvar::wait(&mut guard)` re-acquires the guard's mutex on wakeup,
/// so a wait entered while a higher-ranked lock is held is a lock-order
/// violation even though no `.lock()` call appears in the source. Binding
/// each condvar to the one mutex it is waited with lets the rank checker
/// treat wait sites as acquisition sites.
#[derive(Debug, Clone)]
pub struct CondvarInfo {
    /// Stable identifier: `<crate>/<field>`.
    pub id: String,
    /// Lock id of the mutex every wait site pairs this condvar with.
    pub mutex: Option<String>,
    /// File of the field declaration.
    pub file: String,
    /// Line of the field declaration.
    pub line: usize,
    /// Number of `.wait()`/`.wait_for()` sites observed.
    pub wait_sites: usize,
    /// Number of `.notify_one()`/`.notify_all()` sites observed.
    pub notify_sites: usize,
}

/// One held-while-acquired edge, anchored to the first site it was seen.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub from: String,
    /// Lock acquired while `from` was held.
    pub to: String,
    /// File of the first site producing this edge.
    pub file: String,
    /// Line of that site.
    pub line: usize,
}

/// The workspace lock graph: nodes, edges, cycles, and the diagnostics the
/// analysis produced (not yet allow-filtered).
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every lock field discovered (tracked and raw).
    pub locks: Vec<LockInfo>,
    /// Every condvar field discovered, with its wait-site mutex binding.
    pub condvars: Vec<CondvarInfo>,
    /// Deduplicated held-while-acquired edges.
    pub edges: Vec<LockEdge>,
    /// Distinct cycles found in the edge graph (each a list of lock ids).
    pub cycles: Vec<Vec<String>>,
    /// L3/L5/L6 findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LockGraph {
    /// Renders the checked-in `lock_order.json` spec: the tracked-lock
    /// hierarchy, the observed edges between tracked locks, and any cycles.
    /// Deterministic (sorted) and line-number-free so it only changes when
    /// the hierarchy itself does.
    pub fn spec_json(&self) -> String {
        let mut locks: Vec<&LockInfo> = self.locks.iter().filter(|l| l.ordered).collect();
        locks.sort_by(|a, b| (a.order, &a.id).cmp(&(b.order, &b.id)));
        let mut out = String::from("{\n  \"version\": 2,\n  \"locks\": [");
        for (i, l) in locks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"kind\": \"{}\", \"rank_const\": \"{}\", \
                 \"order\": {}, \"file\": \"{}\"}}",
                l.id,
                l.kind,
                l.rank_const.as_deref().unwrap_or(""),
                l.order.map(|o| o.to_string()).unwrap_or_default(),
                l.file,
            ));
        }
        out.push_str("\n  ],\n  \"condvars\": [");
        let mut cvs: Vec<&CondvarInfo> = self.condvars.iter().collect();
        cvs.sort_by(|a, b| a.id.cmp(&b.id));
        for (i, cv) in cvs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"mutex\": \"{}\"}}",
                cv.id,
                cv.mutex.as_deref().unwrap_or(""),
            ));
        }
        out.push_str("\n  ],\n  \"edges\": [");
        let ordered_ids: BTreeSet<&str> = locks.iter().map(|l| l.id.as_str()).collect();
        let mut edges: Vec<(&str, &str)> = self
            .edges
            .iter()
            .filter(|e| {
                ordered_ids.contains(e.from.as_str()) && ordered_ids.contains(e.to.as_str())
            })
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        edges.sort();
        edges.dedup();
        for (i, (from, to)) in edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"from\": \"{from}\", \"to\": \"{to}\"}}"));
        }
        out.push_str("\n  ],\n  \"cycles\": [");
        for (i, cycle) in self.cycles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ids: Vec<String> = cycle.iter().map(|id| format!("\"{id}\"")).collect();
            out.push_str(&format!("\n    [{}]", ids.join(", ")));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Runs the lock-graph analysis over `(workspace-relative path, source)`
/// pairs. Files under `tests/`, `benches/`, `examples/`, and `fixtures/`
/// are skipped, as are `#[cfg(test)]` regions inside engine files.
pub fn analyze(files: &[(String, String)]) -> LockGraph {
    let mut graph = LockGraph::default();

    // Pass 0: the declared rank table.
    let ranks: HashMap<String, (String, u32)> = files
        .iter()
        .find(|(p, _)| p.ends_with("lsm-sync/src/ranks.rs"))
        .map(|(_, src)| parse_rank_consts(src))
        .unwrap_or_default();

    // Tokenize every engine file once.
    let prepared: Vec<FileTokens> = files
        .iter()
        .filter(|(path, _)| is_engine_file(path))
        .map(|(path, source)| {
            let tokens = tokenize(source);
            let test = test_regions(&tokens);
            FileTokens {
                path: path.clone(),
                crate_name: crate_of(path).to_string(),
                tokens,
                test,
            }
        })
        .collect();

    // Pass 1: lock fields, rank bindings, condvar fields.
    let mut locks: Vec<LockInfo> = Vec::new();
    let mut lock_index: HashMap<(String, String), usize> = HashMap::new();
    for file in &prepared {
        discover_lock_fields(file, &mut locks, &mut lock_index);
    }
    let mut condvars: Vec<CondvarInfo> = Vec::new();
    let mut cv_index: HashMap<(String, String), usize> = HashMap::new();
    for file in &prepared {
        discover_condvars(file, &mut condvars, &mut cv_index);
    }
    for file in &prepared {
        bind_ranks(
            file,
            &ranks,
            &mut locks,
            &lock_index,
            &mut graph.diagnostics,
        );
    }
    for lock in &locks {
        if lock.ordered && lock.rank_const.is_none() {
            graph.diagnostics.push(Diagnostic {
                rule: Rule::LockOrder,
                path: lock.file.clone(),
                line: lock.line,
                message: format!(
                    "tracked lock `{}` has no resolvable rank binding; construct it \
                     with a constant from `lsm-sync::ranks` so the hierarchy covers it",
                    lock.id
                ),
            });
        }
    }

    // Pass 2: accessor functions returning lock references.
    let mut accessors: HashMap<(String, String), usize> = HashMap::new();
    for file in &prepared {
        discover_accessors(file, &locks, &lock_index, &mut accessors);
    }

    // Pass 3: walk every function body.
    let mut fns: Vec<FnSummary> = Vec::new();
    for file in &prepared {
        walk_file(
            file,
            &locks,
            &lock_index,
            &cv_index,
            &accessors,
            &mut fns,
            &mut graph.diagnostics,
        );
    }

    // Pass 3.5: bind each condvar to the mutex its wait sites pair it with.
    // Two different mutexes for one condvar is itself a protocol bug (the
    // waiters race on distinct queues), reported as L5.
    for f in &fns {
        for &(cv, mutex, ref file, line) in &f.cv_waits {
            condvars[cv].wait_sites += 1;
            let Some(mx) = mutex else { continue };
            let mx_id = locks[mx].id.clone();
            match &condvars[cv].mutex {
                None => condvars[cv].mutex = Some(mx_id),
                Some(existing) if *existing != mx_id => graph.diagnostics.push(Diagnostic {
                    rule: Rule::LockOrder,
                    path: file.clone(),
                    line,
                    message: format!(
                        "condvar `{}` is waited on with guards of both `{existing}` and \
                         `{mx_id}`; a condvar must pair with exactly one mutex",
                        condvars[cv].id,
                    ),
                }),
                Some(_) => {}
            }
        }
        for &cv in &f.cv_notifies {
            condvars[cv].notify_sites += 1;
        }
    }
    for cv in &condvars {
        if cv.wait_sites > 0 && cv.notify_sites == 0 {
            graph.diagnostics.push(Diagnostic {
                rule: Rule::LockOrder,
                path: cv.file.clone(),
                line: cv.line,
                message: format!(
                    "condvar `{}` is waited on but never notified; waiters can only \
                     make progress via timeouts (lost-wakeup hazard)",
                    cv.id,
                ),
            });
        }
    }

    // Pass 4: propagate acquisitions and does-I/O through unambiguous
    // intra-crate calls (fixpoint).
    let mut name_count: HashMap<(String, String), usize> = HashMap::new();
    for f in &fns {
        *name_count
            .entry((f.crate_name.clone(), f.name.clone()))
            .or_insert(0) += 1;
    }
    let unique: HashMap<(String, String), usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| name_count[&(f.crate_name.clone(), f.name.clone())] == 1)
        .map(|(i, f)| ((f.crate_name.clone(), f.name.clone()), i))
        .collect();
    let (acquired, does_io) = propagate(&fns, &unique);

    // Pass 5: edges — direct plus call-propagated — and L6 at call sites.
    let mut edge_first: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut record = |from: usize, to: usize, file: &str, line: usize| {
        edge_first
            .entry((locks[from].id.clone(), locks[to].id.clone()))
            .or_insert_with(|| (file.to_string(), line));
    };
    for f in &fns {
        for &(held, acq, ref file, line) in &f.direct_edges {
            record(held, acq, file, line);
        }
        for call in &f.calls {
            let Some(&callee) = unique.get(&(f.crate_name.clone(), call.name.clone())) else {
                continue;
            };
            for &held in &call.held {
                for &acq in &acquired[callee] {
                    if held != acq {
                        record(held, acq, &call.file, call.line);
                    }
                }
            }
            if call.guard_live && does_io[callee] && !is_io_exempt(&call.file) {
                graph.diagnostics.push(Diagnostic {
                    rule: Rule::IoUnderLock,
                    path: call.file.clone(),
                    line: call.line,
                    message: format!(
                        "call to `{}` (which performs blocking backend I/O) while `{}` \
                         is held; drop the guard first, or annotate with \
                         `// lsm-lint: allow(io-under-lock)` and a rationale",
                        call.name,
                        call.held_name.as_deref().unwrap_or("a lock"),
                    ),
                });
            }
        }
    }

    graph.edges = edge_first
        .into_iter()
        .map(|((from, to), (file, line))| LockEdge {
            from,
            to,
            file,
            line,
        })
        .collect();

    // Rank-consistency check: every edge must go strictly up the hierarchy.
    for edge in &graph.edges {
        let from = &locks[lock_index_of(&locks, &edge.from)];
        let to = &locks[lock_index_of(&locks, &edge.to)];
        if let (Some(fo), Some(to_o)) = (from.order, to.order) {
            if fo >= to_o {
                graph.diagnostics.push(Diagnostic {
                    rule: Rule::LockOrder,
                    path: edge.file.clone(),
                    line: edge.line,
                    message: format!(
                        "lock-order violation: `{}` (order {fo}) is held while acquiring \
                         `{}` (order {to_o}); the hierarchy in `lsm-sync::ranks` requires \
                         strictly increasing order",
                        edge.from, edge.to,
                    ),
                });
            }
        }
    }

    // Cycle detection over the deduplicated edge graph.
    graph.cycles = find_cycles(&graph.edges);
    for cycle in &graph.cycles {
        let site = graph
            .edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
        let (file, line) = site
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| (String::from("<workspace>"), 0));
        graph.diagnostics.push(Diagnostic {
            rule: Rule::LockOrder,
            path: file,
            line,
            message: format!(
                "lock-order cycle: {} — a thread interleaving across these sites can \
                 deadlock; break the cycle by reordering acquisitions",
                cycle.join(" -> "),
            ),
        });
    }

    graph.locks = locks;
    graph.condvars = condvars;
    graph
}

fn lock_index_of(locks: &[LockInfo], id: &str) -> usize {
    locks.iter().position(|l| l.id == id).unwrap_or_default()
}

fn is_io_exempt(path: &str) -> bool {
    L6_EXEMPT_FILES.iter().any(|f| path.ends_with(f))
}

pub(crate) fn is_engine_file(path: &str) -> bool {
    !path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples" || c == "fixtures")
}

pub(crate) fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("lsm-lab")
}

struct FileTokens {
    path: String,
    crate_name: String,
    tokens: Vec<Token>,
    test: Vec<bool>,
}

// ---------------------------------------------------------------------------
// Pass 0: rank constants
// ---------------------------------------------------------------------------

/// Parses `pub const NAME: LockRank = LockRank::new("lock.name", order);`
/// declarations from the raw source of `lsm-sync/src/ranks.rs`. Returns
/// const ident → (lock name, order).
fn parse_rank_consts(source: &str) -> HashMap<String, (String, u32)> {
    let mut out = HashMap::new();
    let mut rest = source;
    while let Some(pos) = rest.find("const ") {
        rest = &rest[pos + "const ".len()..];
        let Some(colon) = rest.find(':') else { break };
        let name = rest[..colon].trim().to_string();
        let Some(new_pos) = rest.find("LockRank::new(") else {
            continue;
        };
        let after = &rest[new_pos + "LockRank::new(".len()..];
        let Some(q1) = after.find('"') else { continue };
        let Some(q2) = after[q1 + 1..].find('"') else {
            continue;
        };
        let lock_name = after[q1 + 1..q1 + 1 + q2].to_string();
        let tail = &after[q1 + 2 + q2..];
        let Some(close) = tail.find(')') else {
            continue;
        };
        let digits: String = tail[..close]
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect();
        let Ok(order) = digits.parse::<u32>() else {
            continue;
        };
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            out.insert(name, (lock_name, order));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pass 1: lock fields and rank bindings
// ---------------------------------------------------------------------------

fn lock_kind(type_name: &str) -> Option<(&'static str, bool)> {
    match type_name {
        "Mutex" => Some(("mutex", false)),
        "RwLock" => Some(("rwlock", false)),
        "OrderedMutex" => Some(("mutex", true)),
        "OrderedRwLock" => Some(("rwlock", true)),
        _ => None,
    }
}

/// Finds struct fields typed as a lock: `field: [Vec<]LockType<..>`.
/// Construction sites (`LockType::new(..)`) don't match — the type token
/// must be followed by `<` — and reference types (`&LockType<..>`, i.e.
/// accessor signatures) are rejected during the back-scan.
fn discover_lock_fields(
    file: &FileTokens,
    locks: &mut Vec<LockInfo>,
    index: &mut HashMap<(String, String), usize>,
) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.test[i] {
            continue;
        }
        let Some((kind, ordered)) = lock_kind(&toks[i].text) else {
            continue;
        };
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some("<") {
            continue;
        }
        let Some(field) = field_of_type_token(toks, i) else {
            continue;
        };
        let key = (file.crate_name.clone(), field.clone());
        if index.contains_key(&key) {
            continue;
        }
        index.insert(key, locks.len());
        locks.push(LockInfo {
            id: format!("{}/{}", file.crate_name, field),
            kind,
            ordered,
            rank_const: None,
            order: None,
            file: file.path.clone(),
            line: toks[i].line,
        });
    }
}

/// Back-scans from a lock type token to the declaring field ident. Handles
/// path prefixes (`parking_lot::Mutex`) and one container layer
/// (`Vec<OrderedMutex<..>>`). Returns `None` for non-field contexts
/// (reference types, generic bounds).
fn field_of_type_token(toks: &[Token], type_idx: usize) -> Option<String> {
    let mut j = type_idx.checked_sub(1)?;
    // Path prefix: `parking_lot :: Mutex` — step over `ident ::` pairs.
    while toks[j].text == "::" {
        j = j.checked_sub(2)?;
    }
    // Container layer: `Vec < Mutex`.
    if toks[j].text == "<" {
        let container = toks.get(j.checked_sub(1)?)?;
        if container.text != "Vec" {
            return None;
        }
        j = j.checked_sub(2)?;
        while toks[j].text == "::" {
            j = j.checked_sub(2)?;
        }
    }
    if toks[j].text != ":" {
        return None;
    }
    let field = toks.get(j.checked_sub(1)?)?;
    let ok = field
        .text
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    (ok && !field.text.is_empty()).then(|| field.text.clone())
}

/// Finds struct fields typed `Condvar` in engine sources. Construction
/// sites (`Condvar::new()`) don't match — the type token must not be
/// followed by `::` — and `lsm-sync` itself is excluded: it *implements*
/// the primitive, so its inner `parking_lot::Condvar` field is not a
/// protocol participant.
fn discover_condvars(
    file: &FileTokens,
    condvars: &mut Vec<CondvarInfo>,
    index: &mut HashMap<(String, String), usize>,
) {
    if file.crate_name == "lsm-sync" {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.test[i] || toks[i].text != "Condvar" {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("::") {
            continue;
        }
        let Some(field) = field_of_type_token(toks, i) else {
            continue;
        };
        let key = (file.crate_name.clone(), field.clone());
        if index.contains_key(&key) {
            continue;
        }
        index.insert(key, condvars.len());
        condvars.push(CondvarInfo {
            id: format!("{}/{}", file.crate_name, field),
            mutex: None,
            file: file.path.clone(),
            line: toks[i].line,
            wait_sites: 0,
            notify_sites: 0,
        });
    }
}

/// Binds tracked lock fields to rank constants via construction sites:
/// `field : Ordered* :: new ( ranks :: CONST` binds directly; a file whose
/// single tracked field is built without a field prefix (shard vectors)
/// binds to the file's single construction constant by elimination.
fn bind_ranks(
    file: &FileTokens,
    ranks: &HashMap<String, (String, u32)>,
    locks: &mut [LockInfo],
    index: &HashMap<(String, String), usize>,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &file.tokens;
    let mut unprefixed: Vec<(String, usize)> = Vec::new();
    for i in 0..toks.len() {
        if file.test[i] {
            continue;
        }
        if lock_kind(&toks[i].text).is_none_or(|(_, ordered)| !ordered) {
            continue;
        }
        // `Ordered* :: new (`
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some("::")
            || toks.get(i + 2).map(|t| t.text.as_str()) != Some("new")
            || toks.get(i + 3).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        // First argument: `ranks :: CONST` or a bare upper-case const.
        let rank_const = match (
            toks.get(i + 4).map(|t| t.text.as_str()),
            toks.get(i + 5).map(|t| t.text.as_str()),
            toks.get(i + 6).map(|t| t.text.as_str()),
        ) {
            (Some("ranks"), Some("::"), Some(c)) => c.to_string(),
            (Some(c), _, _) if c.chars().all(|ch| ch.is_ascii_uppercase() || ch == '_') => {
                c.to_string()
            }
            _ => continue,
        };
        // Field prefix: `field :` immediately before the type token.
        let field = i
            .checked_sub(2)
            .filter(|&j| toks[j + 1].text == ":")
            .map(|j| toks[j].text.clone())
            .filter(|f| {
                f.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            });
        match field {
            Some(f) => apply_binding(
                file,
                &f,
                &rank_const,
                toks[i].line,
                ranks,
                locks,
                index,
                diags,
            ),
            None => unprefixed.push((rank_const, toks[i].line)),
        }
    }
    // Elimination: one unbound tracked field declared in this file, all
    // unprefixed constructions agree on one constant.
    let declared_here: Vec<usize> = locks
        .iter()
        .enumerate()
        .filter(|(_, l)| l.ordered && l.file == file.path && l.rank_const.is_none())
        .map(|(i, _)| i)
        .collect();
    if declared_here.len() == 1 && !unprefixed.is_empty() {
        let consts: BTreeSet<&str> = unprefixed.iter().map(|(c, _)| c.as_str()).collect();
        if consts.len() == 1 {
            let field = locks[declared_here[0]]
                .id
                .split('/')
                .nth(1)
                .unwrap_or_default()
                .to_string();
            let (rank_const, line) = unprefixed[0].clone();
            apply_binding(file, &field, &rank_const, line, ranks, locks, index, diags);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_binding(
    file: &FileTokens,
    field: &str,
    rank_const: &str,
    line: usize,
    ranks: &HashMap<String, (String, u32)>,
    locks: &mut [LockInfo],
    index: &HashMap<(String, String), usize>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(&idx) = index.get(&(file.crate_name.clone(), field.to_string())) else {
        return;
    };
    let Some((_, order)) = ranks.get(rank_const) else {
        diags.push(Diagnostic {
            rule: Rule::LockOrder,
            path: file.path.clone(),
            line,
            message: format!(
                "lock `{}` is constructed with unknown rank constant `{rank_const}`; \
                 declare it in `lsm-sync::ranks` (and its REGISTRY)",
                locks[idx].id,
            ),
        });
        return;
    };
    match &locks[idx].rank_const {
        Some(existing) if existing != rank_const => diags.push(Diagnostic {
            rule: Rule::LockOrder,
            path: file.path.clone(),
            line,
            message: format!(
                "lock `{}` is constructed with conflicting ranks `{existing}` and \
                 `{rank_const}`; a lock field must have exactly one place in the hierarchy",
                locks[idx].id,
            ),
        }),
        Some(_) => {}
        None => {
            locks[idx].rank_const = Some(rank_const.to_string());
            locks[idx].order = Some(*order);
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 2: accessor functions
// ---------------------------------------------------------------------------

/// Finds functions returning a reference to a lock (`fn shard_for(..) ->
/// &OrderedMutex<..>`) and maps them to the lock field their body indexes,
/// so `self.shard_for(key).lock()` resolves like a field access.
fn discover_accessors(
    file: &FileTokens,
    locks: &[LockInfo],
    index: &HashMap<(String, String), usize>,
    accessors: &mut HashMap<(String, String), usize>,
) {
    for_each_fn(&file.tokens, &file.test, |name, sig, body| {
        let returns_lock = file.tokens[sig.clone()]
            .windows(2)
            .any(|w| w[0].text == "-" && w[1].text == ">")
            && file.tokens[sig]
                .iter()
                .any(|t| lock_kind(&t.text).is_some());
        if !returns_lock {
            return;
        }
        let field = file.tokens[body]
            .iter()
            .rev()
            .find_map(|t| index.get(&(file.crate_name.clone(), t.text.clone())));
        if let Some(&idx) = field {
            let _ = &locks[idx];
            accessors.insert((file.crate_name.clone(), name.to_string()), idx);
        }
    });
}

/// Iterates function items: `cb(name, signature token range, body token
/// range)`. Bodiless trait signatures and test-region functions are
/// skipped; nested items are visited as part of the enclosing body.
pub(crate) fn for_each_fn(
    tokens: &[Token],
    test: &[bool],
    mut cb: impl FnMut(&str, std::ops::Range<usize>, std::ops::Range<usize>),
) {
    let mut i = 0usize;
    while i < tokens.len() {
        if test[i] || tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        // Find the body `{` (or `;` for a bodiless signature).
        let mut j = i + 2;
        let mut body_start = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    body_start = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        // Match the body's closing brace.
        let mut depth = 0i64;
        let mut end = start;
        for (k, t) in tokens.iter().enumerate().skip(start) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        cb(&name, i + 2..start, start..end + 1);
        // Continue *inside* the body so nested fns are also visited.
        i = start + 1;
    }
}

// ---------------------------------------------------------------------------
// Pass 3: function-body walking
// ---------------------------------------------------------------------------

/// A call site recorded for propagation.
struct CallSite {
    name: String,
    file: String,
    line: usize,
    /// Tracked locks held when the call is made.
    held: Vec<usize>,
    /// Whether *any* guard (tracked, raw, or unresolved) is live.
    guard_live: bool,
    /// Display name of one held lock, for diagnostics.
    held_name: Option<String>,
}

/// Per-function facts feeding the fixpoint.
struct FnSummary {
    crate_name: String,
    name: String,
    /// Locks this function acquires directly.
    direct_acquired: Vec<usize>,
    /// Whether it performs backend I/O directly.
    direct_io: bool,
    /// (held, acquired, file, line) edges observed in the body.
    direct_edges: Vec<(usize, usize, String, usize)>,
    /// Condvar wait sites: (condvar, paired mutex if resolved, file, line).
    cv_waits: Vec<(usize, Option<usize>, String, usize)>,
    /// Condvars this function notifies.
    cv_notifies: Vec<usize>,
    calls: Vec<CallSite>,
}

/// A live guard in the walker.
struct Guard {
    /// Known lock index, if the receiver resolved.
    lock: Option<usize>,
    /// Binding name, for `drop(name)` tracking.
    name: Option<String>,
    /// Brace depth of the binding — the guard dies when scope unwinds past.
    depth: i64,
    /// Expression temporary: dies at the next `;` or block close.
    temp: bool,
    line: usize,
}

#[allow(clippy::too_many_arguments)]
fn walk_file(
    file: &FileTokens,
    locks: &[LockInfo],
    index: &HashMap<(String, String), usize>,
    cv_index: &HashMap<(String, String), usize>,
    accessors: &HashMap<(String, String), usize>,
    fns: &mut Vec<FnSummary>,
    diags: &mut Vec<Diagnostic>,
) {
    for_each_fn(&file.tokens, &file.test, |name, _sig, body| {
        let summary = walk_fn(file, name, body, locks, index, cv_index, accessors, diags);
        fns.push(summary);
    });
}

fn display_name(locks: &[LockInfo], idx: usize, ranks_known: bool) -> String {
    let l = &locks[idx];
    if ranks_known {
        if let Some(c) = &l.rank_const {
            return format!("{} ({c})", l.id);
        }
    }
    l.id.clone()
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn walk_fn(
    file: &FileTokens,
    fn_name: &str,
    body: std::ops::Range<usize>,
    locks: &[LockInfo],
    index: &HashMap<(String, String), usize>,
    cv_index: &HashMap<(String, String), usize>,
    accessors: &HashMap<(String, String), usize>,
    diags: &mut Vec<Diagnostic>,
) -> FnSummary {
    let toks = &file.tokens;
    let crate_name = &file.crate_name;
    let mut summary = FnSummary {
        crate_name: crate_name.clone(),
        name: fn_name.to_string(),
        direct_acquired: Vec::new(),
        direct_io: false,
        direct_edges: Vec::new(),
        cv_waits: Vec::new(),
        cv_notifies: Vec::new(),
        calls: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: HashMap<String, usize> = HashMap::new();
    let mut depth = 0i64;
    let mut stmt_start = true;
    // Pending `let IDENT =` binding for the current statement.
    let mut pending_let: Option<String> = None;

    let field_of = |ident: &str| index.get(&(crate_name.clone(), ident.to_string())).copied();
    let cv_of = |ident: &str| {
        cv_index
            .get(&(crate_name.clone(), ident.to_string()))
            .copied()
    };

    let mut i = body.start;
    while i < body.end {
        let t = toks[i].text.as_str();
        match t {
            "{" => {
                depth += 1;
                stmt_start = true;
                i += 1;
                continue;
            }
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth && !g.temp);
                stmt_start = true;
                pending_let = None;
                i += 1;
                continue;
            }
            ";" => {
                guards.retain(|g| !g.temp);
                stmt_start = true;
                pending_let = None;
                i += 1;
                continue;
            }
            _ => {}
        }

        // `drop(name)` releases a named guard.
        if t == "drop" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            if let Some(victim) = toks.get(i + 2).map(|t| t.text.clone()) {
                guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
            }
            i += 1;
            continue;
        }

        // Statement-leading `let [mut] IDENT =`.
        if stmt_start && t == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            let ident = toks.get(j).map(|t| t.text.clone());
            if let Some(id) = ident {
                let simple = id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if simple && toks.get(j + 1).map(|t| t.text.as_str()) == Some("=") {
                    pending_let = Some(id);
                    // Alias: `let x = self.accessor(..);` / `let x = &self.field;`
                    // (resolved below if no acquisition claims the binding).
                }
            }
            stmt_start = false;
            i += 1;
            continue;
        }

        // Statement-leading `for PAT in <iterable> {` — alias a simple
        // pattern to the lock field the iterable mentions.
        if stmt_start && t == "for" {
            let pat = toks.get(i + 1).map(|t| t.text.clone());
            if let Some(p) = pat {
                if toks.get(i + 2).map(|t| t.text.as_str()) == Some("in") {
                    let mut j = i + 3;
                    let mut found = None;
                    while j < body.end && toks[j].text != "{" {
                        if let Some(idx) = field_of(&toks[j].text) {
                            found = Some(idx);
                        }
                        j += 1;
                    }
                    if let (Some(idx), true) = (found, p != "_") {
                        aliases.insert(p, idx);
                    }
                }
            }
            stmt_start = false;
            i += 1;
            continue;
        }

        // Closure parameter alias: `self.shards.iter().map(|s| s.lock()..)`.
        if t == "|"
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("|")
            && toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.text == "(" || p.text == ",")
        {
            if let Some(param) = toks.get(i + 1).map(|t| t.text.clone()) {
                if param != "_" {
                    // Nearest preceding lock-field mention in this statement.
                    let mut j = i;
                    while j > body.start {
                        j -= 1;
                        match toks[j].text.as_str() {
                            ";" | "{" | "}" => break,
                            other => {
                                if let Some(idx) = field_of(other) {
                                    aliases.insert(param, idx);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            i += 3;
            continue;
        }

        // Method-shaped token runs: `. name (`.
        if t == "." {
            let m = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
            let open = toks.get(i + 2).map(|t| t.text.as_str()) == Some("(");
            let argless = open && toks.get(i + 3).map(|t| t.text.as_str()) == Some(")");
            let line = toks[i].line;

            // Lock acquisition: argless `.lock()` / `.read()` / `.write()`.
            if argless && matches!(m, "lock" | "read" | "write") {
                let lock =
                    resolve_receiver(toks, i, &|id| field_of(id), &aliases, accessors, crate_name);
                // Edges and L3 against every live guard. An edge is
                // recorded whenever both locks are known (rank and cycle
                // checks act on it); L3 fires only when both sides are
                // raw-or-unresolved — tracked locks are governed by L5.
                let acq_ordered = lock.is_some_and(|b| locks[b].ordered);
                for g in &guards {
                    if let (Some(a), Some(b)) = (g.lock, lock) {
                        summary.direct_edges.push((a, b, file.path.clone(), line));
                    }
                    let held_ordered = g.lock.is_some_and(|a| locks[a].ordered);
                    if !held_ordered && !acq_ordered {
                        push_l3(diags, file, line, g.line, locks, g.lock);
                    }
                }
                if let Some(b) = lock {
                    if !summary.direct_acquired.contains(&b) {
                        summary.direct_acquired.push(b);
                    }
                }
                // Guard binding: a statement-leading `let` whose acquisition
                // is terminal (next token after `()` is `;`, or a single
                // `.unwrap()`/`.expect(..)` adapter before the `;` — the
                // std-Mutex guard idiom) names the guard; anything else is
                // an expression temporary.
                let terminal = match toks.get(i + 4).map(|t| t.text.as_str()) {
                    Some(";") => true,
                    Some(".") => {
                        matches!(
                            toks.get(i + 5).map(|t| t.text.as_str()),
                            Some("unwrap") | Some("expect")
                        ) && toks.get(i + 6).map(|t| t.text.as_str()) == Some("(")
                            && match_forward(toks, i + 6, "(", ")").is_some_and(|close| {
                                toks.get(close + 1).map(|t| t.text.as_str()) == Some(";")
                            })
                    }
                    _ => false,
                };
                let (name, temp) = match (&pending_let, terminal) {
                    (Some(n), true) if n != "_" => (Some(n.clone()), false),
                    _ => (None, true),
                };
                guards.push(Guard {
                    lock,
                    name,
                    depth,
                    temp,
                    line,
                });
                i += 4;
                stmt_start = false;
                continue;
            }

            // Condvar wait: `cv.wait(&mut g)` / `cv.wait_for(&mut g, ..)`.
            // The wakeup path re-acquires the guard's mutex, so every
            // *other* live lock forms a held-while-acquired edge to it —
            // a wait added under a higher-ranked lock is caught by the
            // same rank check as an explicit `.lock()`.
            if open && matches!(m, "wait" | "wait_for") {
                let recv = toks
                    .get(i.wrapping_sub(1))
                    .map(|t| t.text.as_str())
                    .unwrap_or("");
                if let Some(cv) = cv_of(recv) {
                    let mut j = i + 3;
                    while toks
                        .get(j)
                        .is_some_and(|t| t.text == "&" || t.text == "mut")
                    {
                        j += 1;
                    }
                    let guard_name = toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
                    let mutex = guards
                        .iter()
                        .rev()
                        .find(|g| g.name.as_deref() == Some(guard_name))
                        .and_then(|g| g.lock);
                    if let Some(b) = mutex {
                        // Only let-bound guards: a wait is its own
                        // statement, so a still-"live" expression
                        // temporary here is leakage from an enclosing
                        // `if`/`while` condition whose temporaries Rust
                        // drops before the block runs.
                        for g in &guards {
                            if g.temp {
                                continue;
                            }
                            if let Some(a) = g.lock {
                                if a != b {
                                    summary.direct_edges.push((a, b, file.path.clone(), line));
                                }
                            }
                        }
                    }
                    summary.cv_waits.push((cv, mutex, file.path.clone(), line));
                    i += 2;
                    stmt_start = false;
                    continue;
                }
            }

            // Condvar notify: `cv.notify_one()` / `cv.notify_all()`.
            if open && matches!(m, "notify_one" | "notify_all") {
                let recv = toks
                    .get(i.wrapping_sub(1))
                    .map(|t| t.text.as_str())
                    .unwrap_or("");
                if let Some(cv) = cv_of(recv) {
                    summary.cv_notifies.push(cv);
                    i += 2;
                    stmt_start = false;
                    continue;
                }
            }

            // Backend I/O.
            let io = (IO_METHODS.contains(&m) && open)
                || (IO_METHODS_WITH_ARGS.contains(&m) && open && !argless);
            if io {
                let recv_is_io = toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| IO_RECEIVERS.contains(&p.text.as_str()));
                if recv_is_io {
                    summary.direct_io = true;
                    if !guards.is_empty() && !is_io_exempt(&file.path) {
                        let held = guards
                            .iter()
                            .rev()
                            .find_map(|g| g.lock)
                            .map(|idx| display_name(locks, idx, true))
                            .unwrap_or_else(|| "a lock".into());
                        // Anchor to the chain root's line when the chain is
                        // `self`-rooted, so reformatting cannot strand an
                        // allow-comment on the wrong line.
                        let line = receiver_self_root(toks, i)
                            .map(|r| toks[r].line)
                            .unwrap_or(line);
                        diags.push(Diagnostic {
                            rule: Rule::IoUnderLock,
                            path: file.path.clone(),
                            line,
                            message: format!(
                                "blocking backend I/O `.{m}(..)` while `{held}` is held; \
                                 drop the guard first, or annotate with \
                                 `// lsm-lint: allow(io-under-lock)` and a rationale",
                            ),
                        });
                    }
                    i += 2;
                    stmt_start = false;
                    continue;
                }
            }

            // Ordinary method call: candidate for propagation. Only
            // `self`-rooted chains qualify — a bare-name match on an
            // arbitrary receiver (`out.push(..)`, `edit.apply(..)`) is
            // dynamic-dispatch guessing and fabricates call edges to
            // same-named crate functions. Diagnostics anchor to the chain
            // root's line (where the statement starts), so rustfmt's
            // chain-splitting cannot strand an allow-comment.
            if open && !m.is_empty() && m.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                if let Some(root) = receiver_self_root(toks, i) {
                    record_call(&mut summary, file, m, toks[root].line, &guards, locks);
                }
            }
            i += 2;
            stmt_start = false;
            continue;
        }

        // Free / path calls: `ident (` not preceded by `.` or `fn`.
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && !CALL_KEYWORDS.contains(&t)
            && t.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && toks
                .get(i.wrapping_sub(1))
                .map(|p| p.text.as_str() != "." && p.text.as_str() != "fn")
                .unwrap_or(true)
        {
            record_call(&mut summary, file, t, toks[i].line, &guards, locks);
        }

        stmt_start = false;
        i += 1;
    }
    summary
}

fn push_l3(
    diags: &mut Vec<Diagnostic>,
    file: &FileTokens,
    line: usize,
    first_line: usize,
    locks: &[LockInfo],
    first_lock: Option<usize>,
) {
    let first = first_lock
        .map(|i| format!("`{}`", locks[i].id))
        .unwrap_or_else(|| "an untracked lock".into());
    diags.push(Diagnostic {
        rule: Rule::LockNesting,
        path: file.path.clone(),
        line,
        message: format!(
            "raw lock acquired while {first} (acquired at line {first_line}) is still \
             held; drop the first guard before the second acquire, or migrate both \
             locks to `lsm-sync` tracked primitives",
        ),
    });
}

fn record_call(
    summary: &mut FnSummary,
    file: &FileTokens,
    name: &str,
    line: usize,
    guards: &[Guard],
    locks: &[LockInfo],
) {
    let held: Vec<usize> = guards.iter().filter_map(|g| g.lock).collect();
    let held_name = guards
        .iter()
        .rev()
        .find_map(|g| g.lock)
        .map(|idx| display_name(locks, idx, true));
    summary.calls.push(CallSite {
        name: name.to_string(),
        file: file.path.clone(),
        line,
        held,
        guard_live: !guards.is_empty(),
        held_name,
    });
}

/// Resolves the receiver of a `.lock()`-style acquisition: a lock field
/// ident, a loop/closure alias, an accessor call (`self.shard_for(k)`), or
/// an index expression (`self.shards[i]`).
fn resolve_receiver(
    toks: &[Token],
    dot_idx: usize,
    field_of: &dyn Fn(&str) -> Option<usize>,
    aliases: &HashMap<String, usize>,
    accessors: &HashMap<(String, String), usize>,
    crate_name: &str,
) -> Option<usize> {
    let prev = dot_idx.checked_sub(1)?;
    match toks[prev].text.as_str() {
        ")" => {
            let open = match_back(toks, prev, "(", ")")?;
            let callee = toks.get(open.checked_sub(1)?)?;
            accessors
                .get(&(crate_name.to_string(), callee.text.clone()))
                .copied()
        }
        "]" => {
            let open = match_back(toks, prev, "[", "]")?;
            let base = toks.get(open.checked_sub(1)?)?;
            field_of(&base.text).or_else(|| aliases.get(&base.text).copied())
        }
        ident => field_of(ident).or_else(|| aliases.get(ident).copied()),
    }
}

/// Resolves the receiver chain of the method call at `dot_idx` (a `.`
/// token) to its root token index, if the chain is rooted at `self` —
/// i.e. `self.f(..)` or `self.inner.f(..)`. Chains containing an
/// intermediate call or index (`self.x.lock().f(..)`) yield `None`: the
/// call lands on the guard's deref target, not on `self`.
pub(crate) fn receiver_self_root(toks: &[Token], dot_idx: usize) -> Option<usize> {
    let mut j = dot_idx.checked_sub(1)?;
    loop {
        let t = toks[j].text.as_str();
        if t == "self" {
            return Some(j);
        }
        let is_ident = !t.is_empty() && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !is_ident {
            return None;
        }
        match j.checked_sub(1) {
            Some(p) if toks[p].text == "." => j = p.checked_sub(1)?,
            _ => return None,
        }
    }
}

/// Finds the index of the `close` token matching the `open` at `open_idx`.
fn match_forward(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds the index of the `open` token matching the `close` at `close_idx`.
fn match_back(toks: &[Token], close_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = close_idx;
    loop {
        let t = toks[j].text.as_str();
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

// ---------------------------------------------------------------------------
// Pass 4: fixpoint propagation
// ---------------------------------------------------------------------------

/// Computes each function's transitive acquisition set and does-I/O flag,
/// following only `self`-rooted or path calls whose name maps to exactly
/// one function in the crate. Monotone union, so the fixpoint terminates.
fn propagate(
    fns: &[FnSummary],
    unique: &HashMap<(String, String), usize>,
) -> (Vec<BTreeSet<usize>>, Vec<bool>) {
    let mut acquired: Vec<BTreeSet<usize>> = fns
        .iter()
        .map(|f| f.direct_acquired.iter().copied().collect())
        .collect();
    let mut does_io: Vec<bool> = fns.iter().map(|f| f.direct_io).collect();
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let Some(&callee) = unique.get(&(f.crate_name.clone(), call.name.clone())) else {
                    continue;
                };
                if callee == i {
                    continue;
                }
                let add: Vec<usize> = acquired[callee]
                    .iter()
                    .filter(|l| !acquired[i].contains(l))
                    .copied()
                    .collect();
                if !add.is_empty() {
                    acquired[i].extend(add);
                    changed = true;
                }
                if does_io[callee] && !does_io[i] {
                    does_io[i] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return (acquired, does_io);
        }
    }
}

// ---------------------------------------------------------------------------
// Cycle detection
// ---------------------------------------------------------------------------

/// Finds distinct cycles in the edge graph via colored DFS. Each cycle is
/// reported once, as the id list along the cycle path.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
        adj.entry(&e.to).or_default();
    }
    let mut color: HashMap<&str, u8> = HashMap::new(); // 0 white, 1 gray, 2 black
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                match color.get(child).copied().unwrap_or(0) {
                    0 => {
                        color.insert(child, 1);
                        stack.push((child, 0));
                        path.push(child);
                    }
                    1 => {
                        // Back edge: extract the cycle from the path.
                        if let Some(pos) = path.iter().position(|&n| n == child) {
                            let mut cycle: Vec<String> =
                                path[pos..].iter().map(|s| s.to_string()).collect();
                            cycle.push(child.to_string());
                            let mut canon = cycle.clone();
                            canon.sort();
                            canon.dedup();
                            if seen.insert(canon) {
                                cycles.push(cycle);
                            }
                        }
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    cycles
}
