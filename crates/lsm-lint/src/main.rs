//! `lsm-lint` CLI: lints the workspace (or `--path <dir>`) and writes a
//! machine-readable JSON report. Exits non-zero when violations are found.
//!
//! ```text
//! cargo run -p lsm-lint                                  # lint the workspace
//! cargo run -p lsm-lint -- --path <dir>                  # lint an arbitrary tree
//! cargo run -p lsm-lint -- --json report.json
//! cargo run -p lsm-lint -- --write-lock-order lock_order.json
//! cargo run -p lsm-lint -- --check-lock-order lock_order.json
//! cargo run -p lsm-lint -- --write-durability-order durability_order.json
//! cargo run -p lsm-lint -- --check-durability-order durability_order.json
//! cargo run -p lsm-lint -- --write-atomics-order atomics_order.json
//! cargo run -p lsm-lint -- --check-atomics-order atomics_order.json
//! cargo run -p lsm-lint -- --only atomics-order                # one rule
//! ```
//!
//! Exit codes: 0 clean, 1 findings or stale/cyclic spec, 2 bad arguments.

use std::path::PathBuf;
use std::process::ExitCode;

/// Compares an on-disk spec against the freshly derived one.
fn check_spec(what: &str, flag: &str, path: &PathBuf, fresh: &str) -> bool {
    match std::fs::read_to_string(path) {
        Ok(on_disk) if on_disk == fresh => {
            eprintln!("lsm-lint: {what} spec {} is up to date", path.display());
            true
        }
        Ok(_) => {
            eprintln!(
                "lsm-lint: {what} spec {} is stale; regenerate with \
                 `cargo run -p lsm-lint -- {flag} {}`",
                path.display(),
                path.display()
            );
            false
        }
        Err(e) => {
            eprintln!(
                "lsm-lint: could not read {what} spec {}: {e}",
                path.display()
            );
            false
        }
    }
}

/// Writes a derived spec to disk.
fn write_spec(what: &str, path: &PathBuf, fresh: &str) -> bool {
    match std::fs::write(path, fresh) {
        Ok(()) => {
            eprintln!("lsm-lint: {what} spec written to {}", path.display());
            true
        }
        Err(e) => {
            eprintln!(
                "lsm-lint: could not write {what} spec to {}: {e}",
                path.display()
            );
            false
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut write_lock: Option<PathBuf> = None;
    let mut check_lock: Option<PathBuf> = None;
    let mut write_dur: Option<PathBuf> = None;
    let mut check_dur: Option<PathBuf> = None;
    let mut write_atomics: Option<PathBuf> = None;
    let mut check_atomics: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => Some(PathBuf::from(v)),
            None => {
                eprintln!("lsm-lint: {flag} requires a value");
                None
            }
        };
        match arg.as_str() {
            "--path" => match value("--path") {
                Some(v) => root = Some(v),
                None => return ExitCode::from(2),
            },
            "--json" => match value("--json") {
                Some(v) => json_out = Some(v),
                None => return ExitCode::from(2),
            },
            "--write-lock-order" => match value("--write-lock-order") {
                Some(v) => write_lock = Some(v),
                None => return ExitCode::from(2),
            },
            "--check-lock-order" => match value("--check-lock-order") {
                Some(v) => check_lock = Some(v),
                None => return ExitCode::from(2),
            },
            "--write-durability-order" => match value("--write-durability-order") {
                Some(v) => write_dur = Some(v),
                None => return ExitCode::from(2),
            },
            "--check-durability-order" => match value("--check-durability-order") {
                Some(v) => check_dur = Some(v),
                None => return ExitCode::from(2),
            },
            "--write-atomics-order" => match value("--write-atomics-order") {
                Some(v) => write_atomics = Some(v),
                None => return ExitCode::from(2),
            },
            "--check-atomics-order" => match value("--check-atomics-order") {
                Some(v) => check_atomics = Some(v),
                None => return ExitCode::from(2),
            },
            "--only" => match value("--only") {
                Some(v) => only = Some(v.to_string_lossy().into_owned()),
                None => return ExitCode::from(2),
            },
            "--help" | "-h" => {
                println!(
                    "lsm-lint: architectural static analysis for lsm-lab\n\n\
                     USAGE: lsm-lint [--path <dir>] [--json <file>] [--only <rule>]\n\
                            [--write-lock-order <file>] [--check-lock-order <file>]\n\
                            [--write-durability-order <file>] [--check-durability-order <file>]\n\
                            [--write-atomics-order <file>] [--check-atomics-order <file>]\n\n\
                     Rules: L0 bad-allow, L1 fs-boundary, L2 no-panic, L3 lock-nesting,\n\
                     L4 knob-docs, L5 lock-order, L6 io-under-lock, L7 durability-order,\n\
                     L8 atomics-order.\n\
                     Suppress a finding with `// lsm-lint: allow(<rule>)` on the same\n\
                     line or the line above; `allow(durability-order)` and\n\
                     `allow(atomics-order)` additionally require a rationale comment.\n\n\
                     --only <rule> keeps findings of a single rule (by `L<n>` id or\n\
                     kebab name) for fast iteration; spec checks still run if asked.\n\
                     --write-lock-order writes the discovered lock hierarchy (locks,\n\
                     condvars, inter-lock edges, cycles) as JSON; --check-lock-order\n\
                     fails if the checked-in spec is stale or the graph has cycles.\n\
                     --write-durability-order / --check-durability-order do the same\n\
                     for the commit pipeline's effect sequences (L7), and\n\
                     --write-atomics-order / --check-atomics-order for the lock-free\n\
                     layer's publication protocol (L8).\n\n\
                     Exit codes: 0 clean, 1 findings or stale spec, 2 bad arguments."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lsm-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default to the workspace root (this crate lives at crates/lsm-lint).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    // Resolve --only before the (slow) scan so a typo fails fast.
    let only_rule = match only.as_deref() {
        None => None,
        Some(s) => match lsm_lint::Rule::parse(s) {
            Some(r) => Some(r),
            None => {
                let known: Vec<&str> = lsm_lint::Rule::ALL.iter().map(|r| r.name()).collect();
                eprintln!(
                    "lsm-lint: unknown rule `{s}` for --only; known rules: {}",
                    known.join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };

    let (mut report, graph, durability, atomics) = match lsm_lint::lint_tree_all(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lsm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(rule) = only_rule {
        report.diagnostics.retain(|d| d.rule == rule);
    }

    for d in &report.diagnostics {
        eprintln!("{d}");
    }

    let mut spec_failed = false;
    if let Some(path) = write_lock {
        spec_failed |= !write_spec("lock-order", &path, &graph.spec_json());
    }
    if let Some(path) = write_dur {
        spec_failed |= !write_spec("durability-order", &path, &durability.spec_json());
    }
    if let Some(path) = check_lock {
        if !graph.cycles.is_empty() {
            eprintln!(
                "lsm-lint: lock-order graph has {} cycle(s): {:?}",
                graph.cycles.len(),
                graph.cycles
            );
            spec_failed = true;
        }
        spec_failed |= !check_spec(
            "lock-order",
            "--write-lock-order",
            &path,
            &graph.spec_json(),
        );
    }
    if let Some(path) = check_dur {
        spec_failed |= !check_spec(
            "durability-order",
            "--write-durability-order",
            &path,
            &durability.spec_json(),
        );
    }
    if let Some(path) = write_atomics {
        spec_failed |= !write_spec("atomics-order", &path, &atomics.spec_json());
    }
    if let Some(path) = check_atomics {
        spec_failed |= !check_spec(
            "atomics-order",
            "--write-atomics-order",
            &path,
            &atomics.spec_json(),
        );
    }

    let json_path = json_out.unwrap_or_else(|| root.join("target/lsm-lint-report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, report.to_json()) {
        Ok(()) => eprintln!("lsm-lint: report written to {}", json_path.display()),
        Err(e) => eprintln!(
            "lsm-lint: could not write report to {}: {e}",
            json_path.display()
        ),
    }

    eprintln!(
        "lsm-lint: {} file(s) checked, {} violation(s)",
        report.files_checked,
        report.diagnostics.len()
    );
    if report.is_clean() && !spec_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
