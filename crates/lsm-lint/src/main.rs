//! `lsm-lint` CLI: lints the workspace (or `--path <dir>`) and writes a
//! machine-readable JSON report. Exits non-zero when violations are found.
//!
//! ```text
//! cargo run -p lsm-lint                      # lint the workspace
//! cargo run -p lsm-lint -- --path <dir>      # lint an arbitrary tree
//! cargo run -p lsm-lint -- --json report.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--path" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "lsm-lint: architectural static analysis for lsm-lab\n\n\
                     USAGE: lsm-lint [--path <dir>] [--json <file>]\n\n\
                     Rules: L1 fs-boundary, L2 no-panic, L3 lock-nesting, L4 knob-docs.\n\
                     Suppress a finding with `// lsm-lint: allow(<rule>)` on the same\n\
                     line or the line above."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lsm-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Default to the workspace root (this crate lives at crates/lsm-lint).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match lsm_lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lsm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        eprintln!("{d}");
    }

    let json_path = json_out.unwrap_or_else(|| root.join("target/lsm-lint-report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, report.to_json()) {
        Ok(()) => eprintln!("lsm-lint: report written to {}", json_path.display()),
        Err(e) => eprintln!(
            "lsm-lint: could not write report to {}: {e}",
            json_path.display()
        ),
    }

    eprintln!(
        "lsm-lint: {} file(s) checked, {} violation(s)",
        report.files_checked,
        report.diagnostics.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
