//! `lsm-lint` CLI: lints the workspace (or `--path <dir>`) and writes a
//! machine-readable JSON report. Exits non-zero when violations are found.
//!
//! ```text
//! cargo run -p lsm-lint                                  # lint the workspace
//! cargo run -p lsm-lint -- --path <dir>                  # lint an arbitrary tree
//! cargo run -p lsm-lint -- --json report.json
//! cargo run -p lsm-lint -- --write-lock-order lock_order.json
//! cargo run -p lsm-lint -- --check-lock-order lock_order.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut write_spec: Option<PathBuf> = None;
    let mut check_spec: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--path" => root = args.next().map(PathBuf::from),
            "--json" => json_out = args.next().map(PathBuf::from),
            "--write-lock-order" => write_spec = args.next().map(PathBuf::from),
            "--check-lock-order" => check_spec = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "lsm-lint: architectural static analysis for lsm-lab\n\n\
                     USAGE: lsm-lint [--path <dir>] [--json <file>]\n\
                            [--write-lock-order <file>] [--check-lock-order <file>]\n\n\
                     Rules: L1 fs-boundary, L2 no-panic, L3 lock-nesting, L4 knob-docs,\n\
                     L5 lock-order, L6 io-under-lock.\n\
                     Suppress a finding with `// lsm-lint: allow(<rule>)` on the same\n\
                     line or the line above.\n\n\
                     --write-lock-order writes the discovered lock hierarchy (locks,\n\
                     rank constants, inter-lock edges, cycles) as JSON; --check-lock-order\n\
                     fails if the checked-in spec is stale or the graph has cycles."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lsm-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Default to the workspace root (this crate lives at crates/lsm-lint).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let (report, graph) = match lsm_lint::lint_tree_full(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lsm-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        eprintln!("{d}");
    }

    let mut spec_failed = false;
    if let Some(path) = write_spec {
        match std::fs::write(&path, graph.spec_json()) {
            Ok(()) => eprintln!("lsm-lint: lock-order spec written to {}", path.display()),
            Err(e) => {
                eprintln!(
                    "lsm-lint: could not write lock-order spec to {}: {e}",
                    path.display()
                );
                spec_failed = true;
            }
        }
    }
    if let Some(path) = check_spec {
        if !graph.cycles.is_empty() {
            eprintln!(
                "lsm-lint: lock-order graph has {} cycle(s): {:?}",
                graph.cycles.len(),
                graph.cycles
            );
            spec_failed = true;
        }
        match std::fs::read_to_string(&path) {
            Ok(on_disk) if on_disk == graph.spec_json() => {
                eprintln!("lsm-lint: lock-order spec {} is up to date", path.display());
            }
            Ok(_) => {
                eprintln!(
                    "lsm-lint: lock-order spec {} is stale; regenerate with \
                     `cargo run -p lsm-lint -- --write-lock-order {}`",
                    path.display(),
                    path.display()
                );
                spec_failed = true;
            }
            Err(e) => {
                eprintln!(
                    "lsm-lint: could not read lock-order spec {}: {e}",
                    path.display()
                );
                spec_failed = true;
            }
        }
    }

    let json_path = json_out.unwrap_or_else(|| root.join("target/lsm-lint-report.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, report.to_json()) {
        Ok(()) => eprintln!("lsm-lint: report written to {}", json_path.display()),
        Err(e) => eprintln!(
            "lsm-lint: could not write report to {}: {e}",
            json_path.display()
        ),
    }

    eprintln!(
        "lsm-lint: {} file(s) checked, {} violation(s)",
        report.files_checked,
        report.diagnostics.len()
    );
    if report.is_clean() && !spec_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
