//! L8 `atomics-order`: publication-safety analysis of raw atomics.
//!
//! The lock-free layer — memtable size/len counters, the lsm-obs event ring
//! and histograms, seqno publication, shutdown flags, epoch pin counts —
//! uses `std::sync::atomic` directly, below the reach of the lock-graph
//! rules. A misordered publish there does not deadlock or panic; it lets a
//! reader observe an index or pointer before the non-atomic data it guards,
//! which corrupts reads silently and only on weakly-ordered hardware. This
//! pass makes the publication protocol checkable:
//!
//! 1. **Discovery** — every atomic field in the workspace (struct fields,
//!    statics, params: any `name: .. Atomic* ..` annotation), keyed by
//!    `(crate, field)`.
//! 2. **Classification** — every `.load/.store/RMW(..)` call that names a
//!    memory ordering, with its effective (strongest listed) ordering and
//!    the enclosing function.
//! 3. **Role inference** — a field is a *publication* field if any store/RMW
//!    uses `Release`-or-stronger or any load uses `Acquire`-or-stronger
//!    (someone, somewhere, relies on it ordering other memory); a *counter*
//!    if it is only ever RMW'd and never stored (guards nothing); *plain*
//!    otherwise (e.g. seqlock payload words protected by a separate
//!    publication field).
//!
//! The rules:
//!
//! - **A1** — on a publication field, every store/RMW must be
//!   `Release`-or-stronger and every load `Acquire`-or-stronger: one
//!   `Relaxed` site unpairs the whole protocol.
//! - **A2** — `SeqCst` requires an annotated rationale (it is a cost: a
//!   full fence on every site); `allow(atomics-order)` + why.
//! - **A3** — a `Relaxed` load may not gate reads of non-atomic fields
//!   (directly in the guarded block, or via an intra-crate call that is
//!   resolved with the same unique-name discipline as L5–L7 and reads
//!   non-atomic state without taking a lock).
//! - **A4** — a standalone `fence`/`compiler_fence` must name its pairing
//!   site in a `pairs with ...` comment on its line or the line above.
//!
//! Deliberate exceptions are annotated `// lsm-lint: allow(atomics-order)`
//! *plus a rationale* — a bare marker is rejected as L0 `bad-allow`, same
//! as `allow(durability-order)`.
//!
//! The inferred protocol is emitted as `atomics_order.json` (see
//! [`AtomicsReport::spec_json`]), checked in at the workspace root as a
//! sibling of `lock_order.json` and `durability_order.json`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;

use crate::durability::{chain_root_line, forward_close};
use crate::lockgraph::{crate_of, for_each_fn, is_engine_file, CALL_KEYWORDS};
use crate::{test_regions, tokenize, Diagnostic, Rule, Token};

/// The `std::sync::atomic` type names that mark a field as atomic.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Memory orderings, weakest to strongest; "effective" ordering of an op
/// with several listed orderings (`compare_exchange`) is the max.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Mo {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Mo {
    fn parse(s: &str) -> Option<Mo> {
        match s {
            "Relaxed" => Some(Mo::Relaxed),
            "Acquire" => Some(Mo::Acquire),
            "Release" => Some(Mo::Release),
            "AcqRel" => Some(Mo::AcqRel),
            "SeqCst" => Some(Mo::SeqCst),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mo::Relaxed => "Relaxed",
            Mo::Acquire => "Acquire",
            Mo::Release => "Release",
            Mo::AcqRel => "AcqRel",
            Mo::SeqCst => "SeqCst",
        }
    }

    /// Orders preceding writes before the store (store/RMW side).
    fn releases(self) -> bool {
        matches!(self, Mo::Release | Mo::AcqRel | Mo::SeqCst)
    }

    /// Orders subsequent reads after the load (load/RMW side).
    fn acquires(self) -> bool {
        matches!(self, Mo::Acquire | Mo::AcqRel | Mo::SeqCst)
    }
}

/// The shape of an atomic access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Load,
    Store,
    Rmw,
}

/// Maps a method name to the access shape, if it is an atomic op.
fn op_kind(method: &str) -> Option<OpKind> {
    match method {
        "load" => Some(OpKind::Load),
        "store" => Some(OpKind::Store),
        "swap"
        | "fetch_add"
        | "fetch_sub"
        | "fetch_and"
        | "fetch_or"
        | "fetch_xor"
        | "fetch_nand"
        | "fetch_min"
        | "fetch_max"
        | "fetch_update"
        | "compare_exchange"
        | "compare_exchange_weak"
        | "compare_and_swap" => Some(OpKind::Rmw),
        _ => None,
    }
}

/// One classified atomic access site.
struct OpSite {
    /// Resolved `(crate, field)` key, when the receiver names a discovered
    /// atomic field.
    field: Option<(String, String)>,
    method: String,
    kind: OpKind,
    /// Strongest ordering listed at the site.
    eff: Mo,
    /// Whether any listed ordering is `SeqCst` (A2 fires on the listing,
    /// not just the max).
    has_seqcst: bool,
    file_idx: usize,
    /// Token index of the `.` before the method, for A3 range matching.
    dot_idx: usize,
    /// Statement-root line (allow-comments anchor here).
    line: usize,
    fn_name: String,
}

/// A tokenized engine file with its per-token test mask and fn map.
struct PFile {
    path: String,
    crate_name: String,
    tokens: Vec<Token>,
    test: Vec<bool>,
    lines: Vec<String>,
    /// `(fn name, body token range)` for every non-test fn.
    fns: Vec<(String, Range<usize>)>,
}

/// What discovery learned about one atomic field.
struct FieldInfo {
    kind: String,
    structs: BTreeSet<String>,
}

/// One field's protocol entry, as emitted into the spec.
#[derive(Clone, Debug)]
pub struct FieldSpec {
    /// Crate the field lives in.
    pub crate_name: String,
    /// Field (or static / binding) name.
    pub field: String,
    /// Structs declaring a field of this name, when known.
    pub structs: Vec<String>,
    /// The `Atomic*` type.
    pub kind: String,
    /// `publication`, `counter`, or `plain`.
    pub role: String,
    /// Distinct store orderings observed, weakest first.
    pub stores: Vec<String>,
    /// Distinct load orderings observed.
    pub loads: Vec<String>,
    /// Distinct RMW orderings observed.
    pub rmws: Vec<String>,
    /// Functions storing/RMW-ing with Release-or-stronger.
    pub publishers: Vec<String>,
    /// Functions loading/RMW-ing with Acquire-or-stronger.
    pub consumers: Vec<String>,
}

/// One standalone fence, as emitted into the spec.
#[derive(Clone, Debug)]
pub struct FenceSpec {
    /// Workspace-relative file.
    pub file: String,
    /// Enclosing function ("" at item scope).
    pub fn_name: String,
}

/// The outcome of the atomics-publication analysis.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    /// Every atomic field with at least one classified access.
    pub fields: Vec<FieldSpec>,
    /// Every standalone fence.
    pub fences: Vec<FenceSpec>,
    /// L8 findings (not yet allow-filtered).
    pub diagnostics: Vec<Diagnostic>,
}

impl AtomicsReport {
    /// Renders the checked-in `atomics_order.json` spec: the rules, every
    /// atomic field's role and ordering profile, and the standalone fences.
    /// Deterministic (sorted) and line-number-free so it only changes when
    /// the protocol does.
    pub fn spec_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
        let rules: &[(&str, &str)] = &[
            (
                "A1",
                "publication stores/RMWs are Release-or-stronger and their consume loads Acquire-or-stronger",
            ),
            ("A2", "SeqCst carries an annotated rationale"),
            (
                "A3",
                "a Relaxed load does not gate reads of non-atomic fields",
            ),
            ("A4", "standalone fences name their pairing site"),
        ];
        for (i, (id, check)) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{id}\", \"check\": \"{check}\"}}"
            ));
        }
        out.push_str("\n  ],\n  \"fields\": [");
        let quote_list = |xs: &[String]| {
            xs.iter()
                .map(|x| format!("\"{x}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"crate\": \"{}\", \"field\": \"{}\", \"kind\": \"{}\", \"role\": \"{}\", \
                 \"structs\": [{}], \"stores\": [{}], \"loads\": [{}], \"rmws\": [{}], \
                 \"publishers\": [{}], \"consumers\": [{}]}}",
                f.crate_name,
                f.field,
                f.kind,
                f.role,
                quote_list(&f.structs),
                quote_list(&f.stores),
                quote_list(&f.loads),
                quote_list(&f.rmws),
                quote_list(&f.publishers),
                quote_list(&f.consumers),
            ));
        }
        out.push_str("\n  ],\n  \"fences\": [");
        for (i, f) in self.fences.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"fn\": \"{}\"}}",
                f.file, f.fn_name
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Runs the atomics-publication analysis over `(workspace-relative path,
/// source)` pairs.
pub fn analyze(files: &[(String, String)]) -> AtomicsReport {
    let mut report = AtomicsReport::default();

    // Tokenize every engine file once.
    let prepared: Vec<PFile> = files
        .iter()
        .filter(|(path, _)| is_engine_file(path))
        .map(|(path, source)| {
            let tokens = tokenize(source);
            let test = test_regions(&tokens);
            let mut fns = Vec::new();
            for_each_fn(&tokens, &test, |name, _sig, body| {
                fns.push((name.to_string(), body));
            });
            PFile {
                path: path.clone(),
                crate_name: crate_of(path).to_string(),
                tokens,
                test,
                lines: source.lines().map(str::to_string).collect(),
                fns,
            }
        })
        .collect();

    // Pass 1: discover atomic fields.
    let mut fields: BTreeMap<(String, String), FieldInfo> = BTreeMap::new();
    for pf in &prepared {
        discover_fields(pf, &mut fields);
    }

    // Pass 2: classify every access and collect standalone fences.
    let mut ops: Vec<OpSite> = Vec::new();
    // (file_idx, token_idx, fn_name, paired)
    let mut fences: Vec<(usize, usize, String, bool)> = Vec::new();
    for (file_idx, pf) in prepared.iter().enumerate() {
        collect_ops(pf, file_idx, &fields, &mut ops, &mut fences);
    }

    // Pass 3: per-field aggregation and role inference.
    let mut aggs: BTreeMap<&(String, String), Agg> = BTreeMap::new();
    for op in &ops {
        let Some(key) = &op.field else { continue };
        let agg = aggs.entry(key).or_default();
        let site = (prepared[op.file_idx].path.clone(), op.line);
        match op.kind {
            OpKind::Store => {
                agg.stores.insert(op.eff);
                agg.has_store = true;
            }
            OpKind::Load => {
                agg.loads.insert(op.eff);
            }
            OpKind::Rmw => {
                agg.rmws.insert(op.eff);
                agg.has_rmw = true;
            }
        }
        if op.kind != OpKind::Load && op.eff.releases() {
            agg.has_rel_write = true;
            if !op.fn_name.is_empty() {
                agg.publishers.insert(op.fn_name.clone());
            }
            agg.witness_pub.get_or_insert(site.clone());
        }
        if op.kind != OpKind::Store && op.eff.acquires() {
            agg.has_acq_load = true;
            if !op.fn_name.is_empty() {
                agg.consumers.insert(op.fn_name.clone());
            }
            agg.witness_con.get_or_insert(site);
        }
    }

    // A1: a Relaxed site on a publication field unpairs the protocol.
    for op in &ops {
        let Some(key) = &op.field else { continue };
        let agg = &aggs[key];
        if !(agg.has_rel_write || agg.has_acq_load) || op.eff != Mo::Relaxed {
            continue;
        }
        let field = &key.1;
        let message = if op.kind == OpKind::Load {
            let (wf, wl) = agg
                .witness_pub
                .as_ref()
                .or(agg.witness_con.as_ref())
                .expect("publication role implies a witness site");
            format!(
                "Relaxed `{field}.load(..)` on a publication field; the Release \
                 store ({wf}:{wl}) orders data before the publication only if \
                 every consumer loads with `Acquire` (rule A1)"
            )
        } else {
            let (wf, wl) = agg
                .witness_con
                .as_ref()
                .or(agg.witness_pub.as_ref())
                .expect("publication role implies a witness site");
            format!(
                "Relaxed `{field}.{}(..)` on a publication field; the paired \
                 Acquire consumer ({wf}:{wl}) can observe the publication before \
                 the data it guards — use `Release` (rule A1)",
                op.method
            )
        };
        report.diagnostics.push(Diagnostic {
            rule: Rule::AtomicsOrder,
            path: prepared[op.file_idx].path.clone(),
            line: op.line,
            message,
        });
    }

    // A2: SeqCst is a cost; every use needs an annotated rationale.
    for op in &ops {
        if !op.has_seqcst {
            continue;
        }
        let recv = op
            .field
            .as_ref()
            .map(|(_, f)| f.as_str())
            .unwrap_or("<expr>");
        report.diagnostics.push(Diagnostic {
            rule: Rule::AtomicsOrder,
            path: prepared[op.file_idx].path.clone(),
            line: op.line,
            message: format!(
                "`SeqCst` on `{recv}.{}(..)`; sequential consistency is a full \
                 fence per site — downgrade to Release/Acquire, or annotate why \
                 the total order is load-bearing with \
                 `// lsm-lint: allow(atomics-order)` + rationale (rule A2)",
                op.method
            ),
        });
    }

    // A4: a standalone fence must say what it pairs with.
    for &(file_idx, tok_idx, ref fn_name, paired) in &fences {
        let pf = &prepared[file_idx];
        if !paired {
            report.diagnostics.push(Diagnostic {
                rule: Rule::AtomicsOrder,
                path: pf.path.clone(),
                line: pf.tokens[tok_idx].line,
                message: "standalone fence without a named pairing site; a fence \
                          is only meaningful against another fence or atomic op — \
                          add a `pairs with <site>` comment on this line or the \
                          line above (rule A4)"
                    .into(),
            });
        }
        report.fences.push(FenceSpec {
            file: pf.path.clone(),
            fn_name: fn_name.clone(),
        });
    }
    report
        .fences
        .sort_by(|a, b| (&a.file, &a.fn_name).cmp(&(&b.file, &b.fn_name)));

    // A3: a Relaxed load gating non-atomic reads (direct, or through a
    // uniquely-resolved intra-crate call that reads unlocked state).
    check_relaxed_gates(&prepared, &fields, &ops, &mut report.diagnostics);

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    report
        .diagnostics
        .dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);

    // The spec: every field with at least one classified access.
    for (key, agg) in &aggs {
        let info = &fields[*key];
        let role = if agg.has_rel_write || agg.has_acq_load {
            "publication"
        } else if !agg.has_store && agg.has_rmw {
            "counter"
        } else {
            "plain"
        };
        let labels = |s: &BTreeSet<Mo>| s.iter().map(|m| m.label().to_string()).collect();
        report.fields.push(FieldSpec {
            crate_name: key.0.clone(),
            field: key.1.clone(),
            structs: info.structs.iter().cloned().collect(),
            kind: info.kind.clone(),
            role: role.to_string(),
            stores: labels(&agg.stores),
            loads: labels(&agg.loads),
            rmws: labels(&agg.rmws),
            publishers: agg.publishers.iter().cloned().collect(),
            consumers: agg.consumers.iter().cloned().collect(),
        });
    }
    report
}

/// Per-field accumulation across all access sites.
#[derive(Default)]
struct Agg {
    has_rel_write: bool,
    has_acq_load: bool,
    has_store: bool,
    has_rmw: bool,
    stores: BTreeSet<Mo>,
    loads: BTreeSet<Mo>,
    rmws: BTreeSet<Mo>,
    publishers: BTreeSet<String>,
    consumers: BTreeSet<String>,
    witness_pub: Option<(String, usize)>,
    witness_con: Option<(String, usize)>,
}

/// Pass 1: records every `name: .. Atomic* ..` annotation — struct fields,
/// statics, params, and struct-literal initializers all reveal the field.
/// Struct attribution comes from a definition-context stack; annotations
/// outside a struct body (statics, params) go unattributed.
fn discover_fields(pf: &PFile, fields: &mut BTreeMap<(String, String), FieldInfo>) {
    let toks = &pf.tokens;
    let mut depth = 0i64;
    let mut struct_stack: Vec<(String, i64)> = Vec::new();
    let mut pending: Option<String> = None;
    for i in 0..toks.len() {
        let t = toks[i].text.as_str();
        match t {
            "struct" => {
                if let Some(n) = toks.get(i + 1) {
                    if n.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    {
                        pending = Some(n.text.clone());
                    }
                }
            }
            "{" => {
                if let Some(name) = pending.take() {
                    struct_stack.push((name, depth));
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if struct_stack.last().is_some_and(|(_, d)| *d == depth) {
                    struct_stack.pop();
                }
            }
            // Tuple/unit struct: unnamed fields, nothing to key on.
            ";" | "(" => pending = None,
            _ => {}
        }
        if pf.test[i] || t != ":" || i == 0 {
            continue;
        }
        let name = &toks[i - 1].text;
        let is_ident = name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        if !is_ident || CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let Some(kind) = scan_type_for_atomic(toks, i + 1) else {
            continue;
        };
        let info = fields
            .entry((pf.crate_name.clone(), name.clone()))
            .or_insert_with(|| FieldInfo {
                kind: kind.to_string(),
                structs: BTreeSet::new(),
            });
        if let Some((s, _)) = struct_stack.last() {
            info.structs.insert(s.clone());
        }
    }
}

/// Scans the type region after a `:` for an `Atomic*` name. The region ends
/// at `;`/`)`/`}`/`{`/`=`, or at a `,` outside angle brackets (so
/// `Vec<AtomicU64>` and `HashMap<K, AtomicU64>` are seen through).
fn scan_type_for_atomic(toks: &[Token], start: usize) -> Option<&'static str> {
    let mut angle = 0i64;
    for tok in toks.iter().skip(start).take(24) {
        let t = tok.text.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "," if angle == 0 => return None,
            ";" | ")" | "}" | "{" | "=" => return None,
            _ => {
                if let Some(a) = ATOMIC_TYPES.iter().find(|a| **a == t) {
                    return Some(a);
                }
            }
        }
    }
    None
}

/// Pass 2: walks one file's whole token stream (not just fn bodies — a
/// `static`'s or `thread_local!`'s initializer is engine code too) and
/// records every atomic op and standalone fence outside test regions.
fn collect_ops(
    pf: &PFile,
    file_idx: usize,
    fields: &BTreeMap<(String, String), FieldInfo>,
    ops: &mut Vec<OpSite>,
    fences: &mut Vec<(usize, usize, String, bool)>,
) {
    let toks = &pf.tokens;
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    for i in 0..toks.len() {
        if pf.test[i] {
            continue;
        }
        let t = toks[i].text.as_str();

        if matches!(t, "fence" | "compiler_fence")
            && text(i + 1) == "("
            && i.checked_sub(1)
                .map(|p| !matches!(text(p), "fn" | "."))
                .unwrap_or(true)
        {
            let line = toks[i].line;
            let paired = [line, line.saturating_sub(1)]
                .iter()
                .filter_map(|&l| l.checked_sub(1).and_then(|idx| pf.lines.get(idx)))
                .any(|raw| raw.contains("pairs with"));
            fences.push((file_idx, i, enclosing_fn(&pf.fns, i), paired));
            continue;
        }

        if t != "." {
            continue;
        }
        let Some(kind) = op_kind(text(i + 1)) else {
            continue;
        };
        if text(i + 2) != "(" {
            continue;
        }
        let Some(close) = forward_close(toks, i + 2) else {
            continue;
        };
        // Orderings listed at this site, excluding any nested atomic op's
        // argument list (`x.store(y.load(Acquire), Release)` stores with
        // Release, not Acquire).
        let mut orders: Vec<Mo> = Vec::new();
        let mut j = i + 3;
        while j < close {
            if toks[j].text == "." && op_kind(text(j + 1)).is_some() && text(j + 2) == "(" {
                if let Some(c) = forward_close(toks, j + 2) {
                    j = c + 1;
                    continue;
                }
            }
            if let Some(mo) = Mo::parse(&toks[j].text) {
                orders.push(mo);
            }
            j += 1;
        }
        // `.load`/`.store`/`.swap` on non-atomics never name an ordering;
        // requiring one is the atomic-op filter.
        let Some(&eff) = orders.iter().max() else {
            continue;
        };
        let field = receiver_ident(toks, i).and_then(|r| {
            let key = (pf.crate_name.clone(), r);
            fields.contains_key(&key).then_some(key)
        });
        ops.push(OpSite {
            field,
            method: text(i + 1).to_string(),
            kind,
            eff,
            has_seqcst: orders.contains(&Mo::SeqCst),
            file_idx,
            dot_idx: i,
            line: chain_root_line(toks, i),
            fn_name: enclosing_fn(&pf.fns, i),
        });
    }
}

/// The identifier the op chain dereferences: the token before the `.`, or —
/// for an indexed receiver like `buckets[i].fetch_add(..)` — the identifier
/// before the matching `[`.
fn receiver_ident(toks: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx.checked_sub(1)?;
    if toks[j].text == "]" {
        let mut depth = 0i64;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        j = j.checked_sub(1)?;
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
    }
    let t = &toks[j].text;
    let ok = t
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && !CALL_KEYWORDS.contains(&t.as_str());
    ok.then(|| t.clone())
}

/// Name of the fn whose body contains token `idx` ("" at item scope).
fn enclosing_fn(fns: &[(String, Range<usize>)], idx: usize) -> String {
    fns.iter()
        .find(|(_, body)| body.contains(&idx))
        .map(|(name, _)| name.clone())
        .unwrap_or_default()
}

/// A3. Per-function facts first: whether the fn takes any lock, whether it
/// reads a non-atomic `self` field, and which intra-crate calls it makes.
/// "Reads unlocked non-atomic state" then propagates through
/// uniquely-resolved calls (the L5–L7 discipline), and every `if`/`while`
/// whose condition contains a Relaxed atomic load is checked against its
/// guarded block.
fn check_relaxed_gates(
    prepared: &[PFile],
    fields: &BTreeMap<(String, String), FieldInfo>,
    ops: &[OpSite],
    diags: &mut Vec<Diagnostic>,
) {
    struct FnSum {
        crate_name: String,
        name: String,
        has_lock: bool,
        direct_read: bool,
        calls: Vec<String>,
    }
    let mut sums: Vec<FnSum> = Vec::new();
    for pf in prepared {
        for (name, body) in &pf.fns {
            sums.push(FnSum {
                crate_name: pf.crate_name.clone(),
                name: name.clone(),
                has_lock: has_lock_acquisition(&pf.tokens, body.clone()),
                direct_read: nonatomic_self_read(pf, fields, body.clone()).is_some(),
                calls: intra_calls(&pf.tokens, body.clone()),
            });
        }
    }

    // Unique-name resolution, as in the lock graph and durability passes.
    let mut name_count: HashMap<(&str, &str), usize> = HashMap::new();
    for s in &sums {
        *name_count
            .entry((s.crate_name.as_str(), s.name.as_str()))
            .or_insert(0) += 1;
    }
    let unique: HashMap<(&str, &str), usize> = sums
        .iter()
        .enumerate()
        .filter(|(_, s)| name_count[&(s.crate_name.as_str(), s.name.as_str())] == 1)
        .map(|(i, s)| ((s.crate_name.as_str(), s.name.as_str()), i))
        .collect();

    // Transitive "reads non-atomic state without a lock" (monotone fixpoint).
    let mut unlocked_read: Vec<bool> = sums.iter().map(|s| !s.has_lock && s.direct_read).collect();
    loop {
        let mut changed = false;
        for (i, s) in sums.iter().enumerate() {
            if unlocked_read[i] || s.has_lock {
                continue;
            }
            let hit = s.calls.iter().any(|c| {
                unique
                    .get(&(s.crate_name.as_str(), c.as_str()))
                    .is_some_and(|&k| unlocked_read[k])
            });
            if hit {
                unlocked_read[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (file_idx, pf) in prepared.iter().enumerate() {
        let toks = &pf.tokens;
        let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
        for (_, body) in &pf.fns {
            let mut k = body.start;
            while k < body.end {
                if !matches!(text(k), "if" | "while") {
                    k += 1;
                    continue;
                }
                // Condition: tokens up to the block's `{` at bracket depth 0.
                // Bail on `=>` / `;` (match guards, malformed scans).
                let mut depth = 0i64;
                let mut cond_end = None;
                let mut c = k + 1;
                while c < body.end {
                    match text(c) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            cond_end = Some(c);
                            break;
                        }
                        ";" => break,
                        "=" if text(c + 1) == ">" => break,
                        _ => {}
                    }
                    c += 1;
                }
                let Some(open) = cond_end else {
                    k += 1;
                    continue;
                };
                let gate = ops.iter().find(|op| {
                    op.file_idx == file_idx
                        && op.kind == OpKind::Load
                        && op.eff == Mo::Relaxed
                        && op.field.is_some()
                        && (k..open).contains(&op.dot_idx)
                });
                let Some(gate) = gate else {
                    k = open + 1;
                    continue;
                };
                let Some(block_end) = match_brace(toks, open) else {
                    k = open + 1;
                    continue;
                };
                let block = open + 1..block_end;
                // A lock acquisition inside the block means the guarded data
                // is ordered by the lock, not the atomic.
                if has_lock_acquisition(toks, block.clone()) {
                    k = open + 1;
                    continue;
                }
                let field = &gate.field.as_ref().expect("gate is field-resolved").1;
                let offense = nonatomic_self_read(pf, fields, block.clone())
                    .map(|(ident, line)| {
                        format!("a read of non-atomic field `self.{ident}` (line {line})")
                    })
                    .or_else(|| {
                        intra_calls(toks, block.clone()).into_iter().find_map(|c| {
                            unique
                                .get(&(pf.crate_name.as_str(), c.as_str()))
                                .filter(|&&k2| unlocked_read[k2])
                                .map(|_| {
                                    format!(
                                        "`{c}(..)`, which reads non-atomic state without a lock"
                                    )
                                })
                        })
                    });
                if let Some(what) = offense {
                    diags.push(Diagnostic {
                        rule: Rule::AtomicsOrder,
                        path: pf.path.clone(),
                        line: gate.line,
                        message: format!(
                            "Relaxed `{field}.load(..)` gates {what}; a Relaxed load \
                             does not order that access against the writer — load with \
                             `Acquire` or move the access under a lock (rule A3)"
                        ),
                    });
                }
                k = open + 1;
            }
        }
    }
}

/// Whether the token range contains an argless `.lock()`/`.read()`/
/// `.write()` call (tracked or raw — either orders the data it guards).
fn has_lock_acquisition(toks: &[Token], range: Range<usize>) -> bool {
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    range.clone().any(|k| {
        text(k) == "."
            && matches!(text(k + 1), "lock" | "read" | "write")
            && text(k + 2) == "("
            && text(k + 3) == ")"
    })
}

/// First `self.<field>` access in the range where `<field>` is not an
/// atomic field and not a method call. Returns `(field, 1-based line)`.
fn nonatomic_self_read(
    pf: &PFile,
    fields: &BTreeMap<(String, String), FieldInfo>,
    range: Range<usize>,
) -> Option<(String, usize)> {
    let toks = &pf.tokens;
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    for k in range {
        if text(k) != "self" || text(k + 1) != "." {
            continue;
        }
        let ident = text(k + 2);
        let is_ident = ident
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
        if !is_ident || text(k + 3) == "(" {
            continue;
        }
        if fields.contains_key(&(pf.crate_name.clone(), ident.to_string())) {
            continue;
        }
        return Some((ident.to_string(), toks[k].line));
    }
    None
}

/// Intra-crate call candidates in the range: `self.m(..)` method calls and
/// bare `f(..)` calls (the same surface the durability walker follows).
fn intra_calls(toks: &[Token], range: Range<usize>) -> Vec<String> {
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    let mut out = Vec::new();
    for k in range {
        let t = text(k);
        if t == "."
            && text(k + 2) == "("
            && text(k + 1)
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase())
        {
            out.push(text(k + 1).to_string());
        } else if text(k + 1) == "("
            && !CALL_KEYWORDS.contains(&t)
            && t.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && k.checked_sub(1)
                .map(|p| !matches!(text(p), "." | "fn" | "::"))
                .unwrap_or(true)
        {
            out.push(t.to_string());
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open_idx`.
fn match_brace(toks: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.text == "{" {
            depth += 1;
        } else if t.text == "}" {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> AtomicsReport {
        analyze(&[("crates/lsm-core/src/x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn relaxed_publish_on_publication_field_is_flagged() {
        let src = "struct S { ready: AtomicU64 }\n\
                   impl S {\n\
                       fn publish(&self) { self.ready.store(1, Ordering::Relaxed); }\n\
                       fn consume(&self) -> u64 { self.ready.load(Ordering::Acquire) }\n\
                   }\n";
        let r = run(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 3);
        assert!(r.diagnostics[0].message.contains("rule A1"));
        assert!(r.diagnostics[0].message.contains("use `Release`"));
    }

    #[test]
    fn relaxed_consume_of_published_field_is_flagged() {
        let src = "struct S { ready: AtomicU64 }\n\
                   impl S {\n\
                       fn publish(&self) { self.ready.store(1, Ordering::Release); }\n\
                       fn consume(&self) -> u64 { self.ready.load(Ordering::Relaxed) }\n\
                   }\n";
        let r = run(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 4);
        assert!(r.diagnostics[0].message.contains("rule A1"));
    }

    #[test]
    fn all_relaxed_counter_is_clean() {
        let src = "struct S { hits: AtomicU64 }\n\
                   impl S {\n\
                       fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
                       fn read(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
                   }\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.fields.len(), 1);
        assert_eq!(r.fields[0].role, "counter");
    }

    #[test]
    fn proper_release_acquire_pair_is_clean_and_specced() {
        let src = "struct S { seq: AtomicU64 }\n\
                   impl S {\n\
                       fn publish(&self) { self.seq.store(1, Ordering::Release); }\n\
                       fn consume(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n\
                   }\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.fields.len(), 1);
        let f = &r.fields[0];
        assert_eq!(f.role, "publication");
        assert_eq!(f.publishers, vec!["publish".to_string()]);
        assert_eq!(f.consumers, vec!["consume".to_string()]);
        assert!(r.spec_json().contains("\"role\": \"publication\""));
    }

    #[test]
    fn seqcst_requires_rationale() {
        let src = "struct S { n: AtomicU64 }\n\
                   impl S { fn f(&self) { self.n.store(1, Ordering::SeqCst); } }\n";
        let r = run(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains("rule A2"));
    }

    #[test]
    fn relaxed_load_gating_nonatomic_read_is_flagged() {
        let src = "struct S { flag: AtomicU64, data: Vec<u8> }\n\
                   impl S {\n\
                       fn read(&self) -> usize {\n\
                           if self.flag.load(Ordering::Relaxed) == 1 {\n\
                               return self.data.len();\n\
                           }\n\
                           0\n\
                       }\n\
                   }\n";
        let r = run(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 4);
        assert!(r.diagnostics[0].message.contains("rule A3"));
        assert!(r.diagnostics[0].message.contains("self.data"));
    }

    #[test]
    fn relaxed_gate_through_unique_call_is_flagged() {
        let src = "struct S { flag: AtomicU64, data: Vec<u8> }\n\
                   impl S {\n\
                       fn gate(&self) {\n\
                           if self.flag.load(Ordering::Relaxed) == 1 {\n\
                               self.touch();\n\
                           }\n\
                       }\n\
                       fn touch(&self) { let _ = self.data.len(); }\n\
                   }\n";
        let r = run(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains("touch"));
        assert!(r.diagnostics[0].message.contains("rule A3"));
    }

    #[test]
    fn relaxed_gate_over_locked_block_is_clean() {
        let src = "struct S { flag: AtomicU64, data: Vec<u8>, mx: Mutex<u8> }\n\
                   impl S {\n\
                       fn read(&self) -> usize {\n\
                           if self.flag.load(Ordering::Relaxed) == 1 {\n\
                               let _g = self.mx.lock();\n\
                               return self.data.len();\n\
                           }\n\
                           0\n\
                       }\n\
                   }\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unpaired_fence_is_flagged_and_paired_is_clean() {
        let bad = "fn f() { std::sync::atomic::fence(Ordering::Release); }\n";
        let r = run(bad);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains("rule A4"));

        let good = "fn f() {\n\
                    // pairs with the Acquire fence in reader::drain\n\
                    std::sync::atomic::fence(Ordering::Release);\n\
                    }\n";
        let r = run(good);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.fences.len(), 1);
    }

    #[test]
    fn seqlock_payload_under_publication_seq_is_clean() {
        // The event-ring shape: Relaxed payload words, published by a
        // Release store of `seq` and consumed by Acquire loads.
        let src = "struct Slot { seq: AtomicU64, w0: AtomicU64 }\n\
                   impl Slot {\n\
                       fn write(&self, v: u64) {\n\
                           self.seq.store(0, Ordering::Release);\n\
                           self.w0.store(v, Ordering::Relaxed);\n\
                           self.seq.store(1, Ordering::Release);\n\
                       }\n\
                       fn read(&self) -> Option<u64> {\n\
                           let s = self.seq.load(Ordering::Acquire);\n\
                           if s == 0 { return None; }\n\
                           let v = self.w0.load(Ordering::Relaxed);\n\
                           if self.seq.load(Ordering::Acquire) != s { return None; }\n\
                           Some(v)\n\
                       }\n\
                   }\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        let w0 = r.fields.iter().find(|f| f.field == "w0").unwrap();
        assert_eq!(w0.role, "plain");
    }

    #[test]
    fn indexed_receiver_resolves_to_the_field() {
        let src = "struct H { buckets: Vec<AtomicU64> }\n\
                   impl H { fn bump(&self, i: usize) { self.buckets[i].fetch_add(1, Ordering::Relaxed); } }\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.fields.len(), 1);
        assert_eq!(r.fields[0].field, "buckets");
        assert_eq!(r.fields[0].role, "counter");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   struct S { ready: AtomicU64 }\n\
                   impl S {\n\
                       fn publish(&self) { self.ready.store(1, Ordering::Relaxed); }\n\
                       fn consume(&self) -> u64 { self.ready.load(Ordering::Acquire) }\n\
                   }\n}\n";
        let r = run(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }
}
