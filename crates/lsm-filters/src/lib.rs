//! Point and range filters for `lsm-lab`.
//!
//! Filters are the auxiliary in-memory structures that let a lookup skip
//! probing a sorted run entirely (tutorial §2.1.3). This crate implements
//! the menu the tutorial surveys:
//!
//! **Point filters** (answer "might this run contain key k?"):
//! * [`BloomFilter`] — the standard per-run Bloom filter.
//! * [`BlockedBloomFilter`] — a cache-local variant: each key hashes to one
//!   64-byte block, trading a slightly higher false-positive rate for a
//!   single cache line per probe (the structural idea behind fast modern
//!   filters such as Ribbon's predecessor, the register-blocked Bloom).
//! * [`CuckooFilter`] — fingerprints in a 4-way cuckoo table; supports
//!   deletes and beats Bloom's space below ~3% false-positive rates
//!   (the building block of Chucky).
//!
//! **Range filters** (answer "might this run contain any key in [a, b)?"):
//! * [`PrefixBloomFilter`] — Bloom over fixed-length key prefixes; answers
//!   range queries that fit within one prefix (RocksDB's prefix filter).
//! * [`SurfFilter`] — a trie over truncated keys supporting true range
//!   membership (the SuRF idea: store just enough of each key's prefix to
//!   distinguish it from its neighbors).
//! * [`RosettaFilter`] — a hierarchy of Bloom filters over dyadic bit-prefix
//!   intervals, strongest for short ranges (the Rosetta design).
//!
//! **Memory allocation**:
//! * [`monkey`] — Monkey's optimal distribution of a filter-memory budget
//!   across levels (fewer bits for the huge last level, more for the small
//!   hot levels).
//!
//! All filters guarantee **no false negatives** (property-tested) and
//! serialize to bytes for embedding in the SSTable filter block.

mod bloom;
mod cuckoo;
pub mod hash;
pub mod monkey;
mod prefix_bloom;
mod rosetta;
mod surf;

pub use bloom::{optimal_probes, theoretical_fp_rate, BlockedBloomFilter, BloomFilter};
pub use cuckoo::CuckooFilter;
pub use prefix_bloom::PrefixBloomFilter;
pub use rosetta::RosettaFilter;
pub use surf::SurfFilter;

use lsm_types::Result;

/// A set-membership filter over point keys.
pub trait PointFilter: Send + Sync {
    /// Whether the set might contain `key`. `false` is definitive.
    fn may_contain(&self, key: &[u8]) -> bool;
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
    /// Serializes the filter for the SSTable filter block.
    fn to_bytes(&self) -> Vec<u8>;
}

/// A filter answering range-emptiness queries.
pub trait RangeFilter: Send + Sync {
    /// Whether the set might contain any key in `[start, end)`.
    /// `false` is definitive.
    fn may_contain_range(&self, start: &[u8], end: &[u8]) -> bool;
    /// Whether the set might contain `key` (point probes also work).
    fn may_contain(&self, key: &[u8]) -> bool;
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
}

/// Which point-filter implementation a table/run should build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PointFilterKind {
    /// No filter: every probe goes to disk.
    None,
    /// Standard Bloom filter.
    Bloom,
    /// Register-blocked Bloom filter.
    BlockedBloom,
    /// Cuckoo filter with 12-bit fingerprints.
    Cuckoo,
}

/// Builds a point filter of `kind` over `keys` with a budget of
/// `bits_per_key`. Returns `None` for [`PointFilterKind::None`].
pub fn build_point_filter(
    kind: PointFilterKind,
    keys: &[&[u8]],
    bits_per_key: f64,
) -> Option<Box<dyn PointFilter>> {
    match kind {
        PointFilterKind::None => None,
        PointFilterKind::Bloom => Some(Box::new(BloomFilter::build(keys, bits_per_key))),
        PointFilterKind::BlockedBloom => {
            Some(Box::new(BlockedBloomFilter::build(keys, bits_per_key)))
        }
        PointFilterKind::Cuckoo => Some(Box::new(CuckooFilter::build(keys, bits_per_key))),
    }
}

/// Deserializes a point filter previously produced by
/// [`PointFilter::to_bytes`] for the given kind.
pub fn point_filter_from_bytes(
    kind: PointFilterKind,
    data: &[u8],
) -> Result<Option<Box<dyn PointFilter>>> {
    Ok(match kind {
        PointFilterKind::None => None,
        PointFilterKind::Bloom => Some(Box::new(BloomFilter::from_bytes(data)?)),
        PointFilterKind::BlockedBloom => Some(Box::new(BlockedBloomFilter::from_bytes(data)?)),
        PointFilterKind::Cuckoo => Some(Box::new(CuckooFilter::from_bytes(data)?)),
    })
}

impl PointFilterKind {
    /// Stable wire discriminant for table footers.
    pub fn as_u8(self) -> u8 {
        match self {
            PointFilterKind::None => 0,
            PointFilterKind::Bloom => 1,
            PointFilterKind::BlockedBloom => 2,
            PointFilterKind::Cuckoo => 3,
        }
    }

    /// Inverse of [`PointFilterKind::as_u8`].
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PointFilterKind::None,
            1 => PointFilterKind::Bloom,
            2 => PointFilterKind::BlockedBloom,
            3 => PointFilterKind::Cuckoo,
            _ => {
                return Err(lsm_types::Error::Corruption(format!(
                    "invalid filter kind {v}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        let keys: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        assert!(build_point_filter(PointFilterKind::None, &refs, 10.0).is_none());
        for kind in [
            PointFilterKind::Bloom,
            PointFilterKind::BlockedBloom,
            PointFilterKind::Cuckoo,
        ] {
            let f = build_point_filter(kind, &refs, 10.0).unwrap();
            for k in &refs {
                assert!(f.may_contain(k), "{kind:?} lost a key");
            }
            assert!(f.memory_bits() > 0);
            // round-trip through bytes
            let bytes = f.to_bytes();
            let back = point_filter_from_bytes(kind, &bytes).unwrap().unwrap();
            for k in &refs {
                assert!(back.may_contain(k), "{kind:?} lost a key after decode");
            }
        }
    }

    #[test]
    fn kind_wire_roundtrip() {
        for kind in [
            PointFilterKind::None,
            PointFilterKind::Bloom,
            PointFilterKind::BlockedBloom,
            PointFilterKind::Cuckoo,
        ] {
            assert_eq!(PointFilterKind::from_u8(kind.as_u8()).unwrap(), kind);
        }
        assert!(PointFilterKind::from_u8(99).is_err());
    }
}
