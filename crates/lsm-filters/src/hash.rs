//! The 64-bit hash function used by every filter.
//!
//! A from-scratch implementation in the xxHash/wyhash family: mix 8-byte
//! lanes with multiply-xorshift rounds, finalize with an avalanche. The
//! exact constants follow splitmix64's finalizer, which passes standard
//! avalanche tests. Filters derive all their probe positions from one
//! 128-bit-ish digest via double hashing (Kirsch–Mitzenmacher), so only two
//! independent 64-bit values are needed per key.

/// Hashes `data` with a `seed`.
pub fn hash64(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h ^= mix(lane);
        h = h.rotate_left(27).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= mix(u64::from_le_bytes(tail) ^ rem.len() as u64);
    }
    mix(h)
}

/// splitmix64 finalizer: full avalanche on 64 bits.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two independent digests of `data`, the basis for double hashing.
#[inline]
pub fn hash_pair(data: &[u8]) -> (u64, u64) {
    (
        hash64(data, 0x1234_5678_9abc_def0),
        hash64(data, 0x0fed_cba9_8765_4321),
    )
}

/// The i-th probe position derived from a hash pair
/// (Kirsch–Mitzenmacher double hashing: `h1 + i*h2`).
#[inline]
pub fn probe(pair: (u64, u64), i: u32) -> u64 {
    pair.0.wrapping_add((i as u64).wrapping_mul(pair.1 | 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"hello", 1), hash64(b"hello", 1));
        assert_ne!(hash64(b"hello", 1), hash64(b"hello", 2));
        assert_ne!(hash64(b"hello", 1), hash64(b"hellp", 1));
    }

    #[test]
    fn length_extension_differs() {
        // "ab" and "ab\0" must differ even though the padded tail is equal.
        assert_ne!(hash64(b"ab", 0), hash64(b"ab\0", 0));
        assert_ne!(hash64(b"", 0), hash64(b"\0", 0));
    }

    #[test]
    fn avalanche_quality() {
        // Flipping any single input bit should flip ~half the output bits.
        let base = b"the quick brown fox".to_vec();
        let h0 = hash64(&base, 7);
        let mut total_flips = 0u32;
        let trials = base.len() * 8;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                total_flips += (hash64(&m, 7) ^ h0).count_ones();
            }
        }
        let avg = total_flips as f64 / trials as f64;
        assert!(
            (24.0..40.0).contains(&avg),
            "average flipped bits {avg} outside [24, 40]"
        );
    }

    #[test]
    fn distribution_over_buckets() {
        // Hashing sequential integers must spread evenly over 64 buckets.
        let mut counts = [0u32; 64];
        let n = 64_000u32;
        for i in 0..n {
            let h = hash64(&i.to_le_bytes(), 0);
            counts[(h % 64) as usize] += 1;
        }
        let expected = n / 64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.15, "bucket {b} count {c} deviates {dev:.2}");
        }
    }

    #[test]
    fn probe_sequence_varies() {
        let pair = hash_pair(b"key");
        let p0 = probe(pair, 0);
        let p1 = probe(pair, 1);
        let p2 = probe(pair, 2);
        assert_ne!(p0, p1);
        assert_ne!(p1, p2);
        assert_eq!(
            p1.wrapping_sub(p0),
            p2.wrapping_sub(p1),
            "arithmetic progression"
        );
    }
}
