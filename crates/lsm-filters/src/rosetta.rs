//! A Rosetta-like range filter: a hierarchy of Bloom filters over dyadic
//! bit-prefix intervals.
//!
//! Rosetta (Luo et al., SIGMOD'20) logically builds a segment tree over the
//! key space: level ℓ holds a Bloom filter of every stored key's ℓ-bit
//! prefix. A range query decomposes into O(log R) dyadic intervals, probes
//! each, and on a positive *drills down* ("doubts") to the bottom level so
//! that only ranges confirmed at full key resolution report "maybe". This
//! makes it strongest exactly where prefix filters and SuRF are weakest —
//! short ranges — at the price of CPU (many Bloom probes) and memory in the
//! deep levels (tutorial §2.1.3, experiment E5).
//!
//! Keys are mapped to `u64` by their first 8 bytes, big-endian, zero-padded
//! — a monotone mapping, so range queries over byte strings translate
//! soundly to ranges over `u64` images (byte strings that share their first
//! 8 bytes collide, which can only cause false positives, never negatives).

use crate::bloom::BloomFilter;
use crate::RangeFilter;

/// Bit depth of the hierarchy (levels 1..=64).
const DEPTH: u32 = 64;

/// A hierarchy of prefix Bloom filters supporting range-emptiness probes.
pub struct RosettaFilter {
    /// `blooms[i]` indexes (i+1)-bit prefixes.
    blooms: Vec<BloomFilter>,
    key_count: usize,
}

/// Monotone map from byte keys to the `u64` prefix space.
fn to_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

impl RosettaFilter {
    /// Builds a filter over `keys` with a total budget of `bits_per_key`
    /// bits per key across all levels.
    ///
    /// Memory allocation follows Rosetta's insight: the bottom level does
    /// the confirming and gets half the budget; each level above gets half
    /// of the remainder (short prefixes are cheap — few distinct values).
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let values: Vec<u64> = {
            let mut v: Vec<u64> = keys.iter().map(|k| to_u64(k)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut budgets = vec![0.0f64; DEPTH as usize];
        let mut remaining = bits_per_key.max(2.0);
        for level in (0..DEPTH as usize).rev() {
            let share = if level == 0 {
                remaining
            } else {
                remaining / 2.0
            };
            budgets[level] = share.max(0.5);
            remaining -= share;
        }
        let blooms = (0..DEPTH as usize)
            .map(|level| {
                let bits = level as u32 + 1;
                let prefixes: Vec<Vec<u8>> = values
                    .iter()
                    .map(|&v| (v >> (DEPTH - bits)).to_be_bytes().to_vec())
                    .collect();
                let mut dedup = prefixes;
                dedup.dedup(); // values sorted => prefixes sorted
                let refs: Vec<&[u8]> = dedup.iter().map(|p| p.as_slice()).collect();
                // Budget is per original key; distinct-prefix count shrinks
                // toward the root, concentrating bits where they matter.
                let total = budgets[level] * values.len().max(1) as f64;
                let per_prefix = total / refs.len().max(1) as f64;
                BloomFilter::build(&refs, per_prefix)
            })
            .collect();
        RosettaFilter {
            blooms,
            key_count: values.len(),
        }
    }

    /// Probe the (level+1)-bit prefix filter.
    fn probe(&self, prefix: u64, bits: u32) -> bool {
        use crate::PointFilter;
        if self.key_count == 0 {
            return false;
        }
        self.blooms[(bits - 1) as usize].may_contain(&prefix.to_be_bytes())
    }

    /// Rosetta's "doubt": confirm a positive prefix probe by drilling to
    /// the bottom of the hierarchy.
    fn doubt(&self, prefix: u64, bits: u32) -> bool {
        if !self.probe(prefix, bits) {
            return false;
        }
        if bits == DEPTH {
            return true;
        }
        self.doubt(prefix << 1, bits + 1) || self.doubt((prefix << 1) | 1, bits + 1)
    }

    /// Whether any stored key's image lies in `[lo, hi]` (inclusive).
    fn range_u64(&self, mut lo: u64, hi: u64) -> bool {
        if self.key_count == 0 || lo > hi {
            return false;
        }
        // Dyadic decomposition of [lo, hi]: repeatedly take the largest
        // aligned block starting at lo that fits.
        loop {
            let align = if lo == 0 { DEPTH } else { lo.trailing_zeros() };
            let span = hi - lo; // block may cover at most span+1 values
            let fit = if span == u64::MAX {
                DEPTH
            } else {
                63 - (span + 1).leading_zeros().min(63)
            };
            // Block of 2^k values; capped at 2^63 so even the full space
            // decomposes into probeable (>= 1-bit-prefix) blocks.
            let k = align.min(fit).min(63);
            let bits = DEPTH - k;
            if self.doubt(lo >> k, bits) {
                return true;
            }
            let step = (1u64 << k) - 1;
            match lo.checked_add(step).and_then(|x| x.checked_add(1)) {
                Some(next) if next <= hi => lo = next,
                _ => return false,
            }
        }
    }

    /// Number of distinct key images indexed.
    pub fn key_count(&self) -> usize {
        self.key_count
    }
}

impl RangeFilter for RosettaFilter {
    fn may_contain_range(&self, start: &[u8], end: &[u8]) -> bool {
        if start >= end {
            return false;
        }
        let lo = to_u64(start);
        // `end` is exclusive over byte strings, but keys strictly below it
        // can still share its 8-byte image: when `end` extends beyond 8
        // bytes, or when its image pads with / ends in zero bytes (e.g.
        // "\x00" < "\x00\x00" yet both map to 0). Only exclude the image
        // when no such key can exist.
        let image_excluded = end.len() <= 8 && end.last().is_some_and(|&b| b != 0);
        let hi = if image_excluded {
            match to_u64(end).checked_sub(1) {
                Some(h) => h,
                None => return false,
            }
        } else {
            to_u64(end)
        };
        self.range_u64(lo, hi)
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        let v = to_u64(key);
        self.range_u64(v, v)
    }

    fn memory_bits(&self) -> usize {
        use crate::PointFilter;
        self.blooms.iter().map(|b| b.memory_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[u64], bpk: f64) -> RosettaFilter {
        let encoded: Vec<[u8; 8]> = keys.iter().map(|k| k.to_be_bytes()).collect();
        let refs: Vec<&[u8]> = encoded.iter().map(|k| k.as_slice()).collect();
        RosettaFilter::build(&refs, bpk)
    }

    #[test]
    fn point_no_false_negatives() {
        let keys: Vec<u64> = (0..500).map(|i| i * 7919).collect();
        let f = build(&keys, 22.0);
        for &k in &keys {
            assert!(f.may_contain(&k.to_be_bytes()), "lost {k}");
        }
    }

    #[test]
    fn range_no_false_negatives() {
        let keys: Vec<u64> = (0..200).map(|i| i * 1000 + 500).collect();
        let f = build(&keys, 22.0);
        for &k in &keys {
            // short ranges straddling the key
            let lo = (k - 3).to_be_bytes();
            let hi = (k + 3).to_be_bytes();
            assert!(f.may_contain_range(&lo, &hi), "range around {k} lost");
        }
    }

    #[test]
    fn short_empty_ranges_rejected() {
        let keys: Vec<u64> = (0..200).map(|i| i * 1000).collect();
        let f = build(&keys, 22.0);
        let mut fps = 0;
        let mut trials = 0;
        for i in 0..200u64 {
            // [i*1000 + 400, i*1000 + 432): 32-wide, firmly between keys
            let lo = (i * 1000 + 400).to_be_bytes();
            let hi = (i * 1000 + 432).to_be_bytes();
            trials += 1;
            if f.may_contain_range(&lo, &hi) {
                fps += 1;
            }
        }
        assert!(
            fps * 5 < trials,
            "short-range FP rate too high: {fps}/{trials}"
        );
    }

    #[test]
    fn adjacent_keys_not_confused() {
        let f = build(&[100, 200], 24.0);
        assert!(f.may_contain(&100u64.to_be_bytes()));
        assert!(!f.may_contain(&101u64.to_be_bytes()));
        assert!(f.may_contain_range(&99u64.to_be_bytes(), &101u64.to_be_bytes()));
        assert!(!f.may_contain_range(&101u64.to_be_bytes(), &150u64.to_be_bytes()));
    }

    #[test]
    fn byte_string_mapping_is_safe() {
        let keys = [b"apple".as_slice(), b"banana".as_slice()];
        let f = RosettaFilter::build(&keys, 22.0);
        assert!(f.may_contain(b"apple"));
        assert!(f.may_contain_range(b"app", b"apz"));
        assert!(!f.may_contain_range(b"x", b"z"));
        // Keys longer than 8 bytes collide in image space: FP, never FN.
        let long = [b"abcdefgh-one".as_slice()];
        let f = RosettaFilter::build(&long, 22.0);
        assert!(f.may_contain(b"abcdefgh-one"));
        assert!(
            f.may_contain(b"abcdefgh-two"),
            "image collision is a (safe) FP"
        );
    }

    #[test]
    fn boundary_values() {
        let f = build(&[0, u64::MAX], 24.0);
        assert!(f.may_contain(&0u64.to_be_bytes()));
        assert!(f.may_contain(&u64::MAX.to_be_bytes()));
        // Full-space range must terminate and find them.
        assert!(f.may_contain_range(&0u64.to_be_bytes(), &[0xff; 9]));
        assert!(!f.may_contain_range(&1u64.to_be_bytes(), &100u64.to_be_bytes()));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = RosettaFilter::build(&[], 22.0);
        assert!(!f.may_contain(b"x"));
        assert!(!f.may_contain_range(&[0], &[0xff; 9]));
    }
}
