//! A SuRF-like trie range filter.
//!
//! SuRF (Zhang et al., SIGMOD'18) stores the *shortest distinguishing
//! prefix* of every key in a succinct trie: long enough to separate each key
//! from its neighbors, short enough to fit in memory. Point probes walk the
//! trie; range probes ask for the successor of the range start among stored
//! prefixes and compare it against the range end. False positives arise
//! exactly where truncation hides the key's tail — rarer for long ranges,
//! which is why SuRF shines there (tutorial §2.1.3, experiment E5).
//!
//! This implementation uses an explicit pointer trie rather than a
//! LOUDS-encoded succinct one (a documented substitution in DESIGN.md): the
//! query behavior — which probes pass and which fail — is identical, and
//! [`SurfFilter::memory_bits`] reports the space the succinct encoding
//! would take (~10 bits per node plus suffix bytes) so memory-vs-FP
//! tradeoff experiments stay faithful.
//!
//! The `suffix_bits` knob implements SuRF-Hash: storing a few hash bits of
//! each key's truncated tail slashes point-probe false positives without
//! helping (or hurting) range probes.

use crate::hash::hash64;
use crate::RangeFilter;

#[derive(Debug, Default)]
struct TrieNode {
    /// Sorted by label byte.
    children: Vec<(u8, u32)>,
    /// A truncated key ends at this node.
    terminal: bool,
    /// SuRF-Hash: hash bits of the suffix that was truncated away.
    suffix_hash: u8,
}

/// A trie over shortest-distinguishing key prefixes.
pub struct SurfFilter {
    nodes: Vec<TrieNode>,
    suffix_bits: u32,
    key_count: usize,
}

impl SurfFilter {
    /// Builds a filter over `keys` (need not be sorted; duplicates are
    /// fine). `suffix_bits` ∈ [0, 8] enables SuRF-Hash point filtering.
    pub fn build(keys: &[&[u8]], suffix_bits: u32) -> Self {
        assert!(suffix_bits <= 8, "at most one suffix byte is stored");
        let mut sorted: Vec<&[u8]> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut filter = SurfFilter {
            nodes: vec![TrieNode::default()],
            suffix_bits,
            key_count: sorted.len(),
        };

        let lcp = |a: &[u8], b: &[u8]| a.iter().zip(b).take_while(|(x, y)| x == y).count();
        for (i, key) in sorted.iter().enumerate() {
            // Shortest prefix distinguishing this key from both neighbors.
            let left = if i > 0 { lcp(sorted[i - 1], key) } else { 0 };
            let right = if i + 1 < sorted.len() {
                lcp(key, sorted[i + 1])
            } else {
                0
            };
            let trunc = (left.max(right) + 1).min(key.len());
            filter.insert_truncated(&key[..trunc], &key[trunc..]);
        }
        filter
    }

    fn insert_truncated(&mut self, prefix: &[u8], suffix: &[u8]) {
        let mut node = 0u32;
        for &b in prefix {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&b, |(label, _)| *label);
            node = match pos {
                Ok(idx) => self.nodes[node as usize].children[idx].1,
                Err(idx) => {
                    let new = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node as usize].children.insert(idx, (b, new));
                    new
                }
            };
        }
        let n = &mut self.nodes[node as usize];
        n.terminal = true;
        n.suffix_hash = (hash64(suffix, 0x5u64) & 0xff) as u8;
    }

    fn suffix_matches(&self, node: u32, suffix: &[u8]) -> bool {
        if self.suffix_bits == 0 {
            return true;
        }
        let mask = if self.suffix_bits >= 8 {
            0xff
        } else {
            (1u8 << self.suffix_bits) - 1
        };
        let stored = self.nodes[node as usize].suffix_hash & mask;
        let probe = (hash64(suffix, 0x5u64) & 0xff) as u8 & mask;
        stored == probe
    }

    /// Smallest terminal string in `node`'s subtree; `acc` is the path so
    /// far and is restored before returning.
    fn min_terminal(&self, node: u32, acc: &mut Vec<u8>) -> Option<Vec<u8>> {
        if self.nodes[node as usize].terminal {
            return Some(acc.clone());
        }
        // children are sorted, so the first subtree with a terminal wins
        for &(b, child) in &self.nodes[node as usize].children {
            acc.push(b);
            let r = self.min_terminal(child, acc);
            acc.pop();
            if r.is_some() {
                return r;
            }
        }
        None
    }

    /// Smallest terminal `t >= start` in `node`'s subtree (with `start`
    /// relative to the subtree). Terminals that are proper prefixes of
    /// `start` are *not* returned (the caller treats those separately).
    fn successor(&self, node: u32, start: &[u8], acc: &mut Vec<u8>) -> Option<Vec<u8>> {
        if start.is_empty() {
            return self.min_terminal(node, acc);
        }
        let b = start[0];
        for &(label, child) in &self.nodes[node as usize].children {
            if label < b {
                continue;
            }
            acc.push(label);
            let r = if label == b {
                self.successor(child, &start[1..], acc)
            } else {
                self.min_terminal(child, acc)
            };
            acc.pop();
            if r.is_some() {
                return r;
            }
        }
        None
    }

    /// Whether any stored truncated prefix is a proper prefix of `key` or
    /// equal to it — if so, the stored key *might* be anywhere that extends
    /// it, so range probes must answer "maybe".
    fn terminal_prefix_of(&self, key: &[u8]) -> bool {
        let mut node = 0u32;
        if self.nodes[0].terminal {
            return true;
        }
        for &b in key {
            match self.nodes[node as usize]
                .children
                .binary_search_by_key(&b, |(label, _)| *label)
            {
                Ok(idx) => node = self.nodes[node as usize].children[idx].1,
                Err(_) => return false,
            }
            if self.nodes[node as usize].terminal {
                return true;
            }
        }
        false
    }

    /// Number of distinct keys indexed.
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// Number of trie nodes (the memory driver).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl RangeFilter for SurfFilter {
    fn may_contain_range(&self, start: &[u8], end: &[u8]) -> bool {
        if start >= end {
            return false;
        }
        // Case 1: a stored prefix is a prefix of `start` — the real key
        // extends it unknowably; must answer maybe.
        if self.terminal_prefix_of(start) {
            return true;
        }
        // Case 2: the successor prefix t >= start exists and t < end — the
        // real key extends t, so it is >= t; it may lie below `end`.
        match self.successor(0, start, &mut Vec::new()) {
            Some(t) => t.as_slice() < end,
            None => false,
        }
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        // Walk the key; a terminal hit mid-way means a stored key was
        // truncated here — verify via suffix hash, but keep walking on a
        // mismatch because another (longer) stored prefix may still match.
        let mut node = 0u32;
        for (i, &b) in key.iter().enumerate() {
            if self.nodes[node as usize].terminal && self.suffix_matches(node, &key[i..]) {
                return true;
            }
            match self.nodes[node as usize]
                .children
                .binary_search_by_key(&b, |(label, _)| *label)
            {
                Ok(idx) => node = self.nodes[node as usize].children[idx].1,
                Err(_) => return false,
            }
        }
        self.nodes[node as usize].terminal && self.suffix_matches(node, b"")
    }

    fn memory_bits(&self) -> usize {
        // Succinct-encoding equivalent: ~10 bits per node (LOUDS-DS) plus
        // the stored suffix bits per key.
        self.nodes.len() * 10 + self.key_count * self.suffix_bits as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[&str]) -> SurfFilter {
        let raw: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        SurfFilter::build(&raw, 8)
    }

    #[test]
    fn point_no_false_negatives() {
        let keys = ["apple", "apricot", "banana", "blueberry", "cherry"];
        let f = build(&keys);
        for k in keys {
            assert!(f.may_contain(k.as_bytes()), "lost {k}");
        }
    }

    #[test]
    fn point_negatives_mostly_rejected() {
        let f = build(&["apple", "apricot", "banana"]);
        assert!(!f.may_contain(b"cherry"));
        assert!(!f.may_contain(b"aardvark"));
        // "apXle" shares only "ap" with stored keys; the trie diverges.
        assert!(!f.may_contain(b"azure"));
    }

    #[test]
    fn range_no_false_negatives() {
        let keys = ["d", "h", "mango", "mzzz", "t"];
        let f = build(&keys);
        for k in keys {
            let mut end = k.as_bytes().to_vec();
            end.push(0);
            assert!(
                f.may_contain_range(k.as_bytes(), &end),
                "range [{k}, {k}\\0) lost"
            );
        }
        assert!(f.may_contain_range(b"a", b"z"));
        assert!(f.may_contain_range(b"g", b"i"), "h is in [g, i)");
    }

    #[test]
    fn empty_ranges_rejected() {
        let f = build(&["d", "h", "t"]);
        assert!(!f.may_contain_range(b"e", b"g"), "nothing in [e, g)");
        assert!(
            !f.may_contain_range(b"u", b"z"),
            "nothing after t... [u, z)"
        );
        assert!(!f.may_contain_range(b"a", b"b"));
        assert!(!f.may_contain_range(b"x", b"a"), "inverted");
        assert!(!f.may_contain_range(b"h", b"h"), "empty");
    }

    #[test]
    fn truncation_produces_range_fp_but_never_fn() {
        // "mango" and "melon" diverge at byte 1, so stored prefixes are
        // ~"ma"/"me"; a range like [mb, md) may false-positive against "ma*"
        // — but [n, o) must be definitively empty.
        let f = build(&["mango", "melon"]);
        assert!(!f.may_contain_range(b"n", b"o"));
        assert!(f.may_contain_range(b"mango", b"mangz"));
        assert!(f.may_contain_range(b"melon", b"meloz"));
    }

    #[test]
    fn prefix_key_relationships() {
        // One key is a prefix of another: truncation clamps to full length.
        let f = build(&["ab", "abc", "abcd"]);
        assert!(f.may_contain(b"ab"));
        assert!(f.may_contain(b"abc"));
        assert!(f.may_contain(b"abcd"));
        assert!(f.may_contain_range(b"ab", b"ab\x01"));
        assert!(f.may_contain_range(b"abc", b"abd"));
    }

    #[test]
    fn empty_filter() {
        let f = SurfFilter::build(&[], 0);
        assert!(!f.may_contain(b"x"));
        assert!(!f.may_contain_range(b"a", b"z"));
        assert_eq!(f.key_count(), 0);
    }

    #[test]
    fn suffix_bits_reduce_point_fp() {
        // With many keys sharing structure, compare FP with/without hash.
        let keys: Vec<String> = (0..2000u32).map(|i| format!("key{i:06}xyz")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let base = SurfFilter::build(&refs, 0);
        let hashed = SurfFilter::build(&refs, 8);
        let mut fp_base = 0;
        let mut fp_hashed = 0;
        for i in 0..2000u32 {
            let probe = format!("key{i:06}abc"); // same truncated prefix, different tail
            if base.may_contain(probe.as_bytes()) {
                fp_base += 1;
            }
            if hashed.may_contain(probe.as_bytes()) {
                fp_hashed += 1;
            }
        }
        assert!(
            fp_hashed * 4 < fp_base.max(1) || fp_base == 0,
            "suffix hash should cut FPs: base {fp_base}, hashed {fp_hashed}"
        );
    }

    #[test]
    fn memory_scales_with_nodes() {
        let small = build(&["a", "b"]);
        let keys: Vec<String> = (0..500u32).map(|i| format!("{i:08}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let big = SurfFilter::build(&refs, 8);
        assert!(big.memory_bits() > small.memory_bits());
        assert!(big.node_count() >= 500);
    }
}
