//! The prefix Bloom filter: RocksDB's range filter for prefix scans.
//!
//! Store a Bloom filter over fixed-length key *prefixes* instead of whole
//! keys. A range query entirely contained within one prefix (`[user42#a,
//! user42#z)`) can be answered by probing that single prefix; ranges that
//! span prefixes are answered by enumerating the covered prefixes, up to a
//! bound, beyond which the filter answers "maybe". Good for long ranges
//! aligned with the prefix structure, useless for arbitrary short ranges —
//! the contrast with Rosetta that experiment E5 measures.
//!
//! Keys shorter than the prefix length are zero-padded, making the prefix
//! space fixed-length; prefix extraction is then monotone
//! (`k1 <= k2 ⇒ prefix(k1) <= prefix(k2)`), which is what makes the range
//! enumeration free of false negatives.

use crate::bloom::BloomFilter;
use crate::{PointFilter, RangeFilter};

/// Bloom filter over `prefix_len`-byte (zero-padded) key prefixes.
pub struct PrefixBloomFilter {
    bloom: BloomFilter,
    prefix_len: usize,
    /// How many consecutive prefixes a range query will enumerate before
    /// giving up and answering "maybe".
    max_enumeration: usize,
}

impl PrefixBloomFilter {
    /// Builds a filter from `keys`, hashing each key's (padded) prefix and
    /// spending `bits_per_key` bits per *key* (duplicate prefixes make the
    /// effective bits-per-prefix higher).
    pub fn build(keys: &[&[u8]], prefix_len: usize, bits_per_key: f64) -> Self {
        assert!(prefix_len > 0, "prefix length must be positive");
        let mut prefixes: Vec<Vec<u8>> = keys.iter().map(|k| pad(k, prefix_len)).collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        let refs: Vec<&[u8]> = prefixes.iter().map(|p| p.as_slice()).collect();
        let total_bits = (keys.len() as f64 * bits_per_key).max(64.0);
        let bits_per_prefix = total_bits / refs.len().max(1) as f64;
        PrefixBloomFilter {
            bloom: BloomFilter::build(&refs, bits_per_prefix),
            prefix_len,
            max_enumeration: 64,
        }
    }

    /// The configured prefix length.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }
}

/// Truncate to `len` bytes and zero-pad.
fn pad(key: &[u8], len: usize) -> Vec<u8> {
    let mut p = key[..key.len().min(len)].to_vec();
    p.resize(len, 0);
    p
}

/// Fixed-length increment with carry; `None` when the prefix is all 0xff.
fn increment(prefix: &mut [u8]) -> bool {
    for i in (0..prefix.len()).rev() {
        if prefix[i] != 0xff {
            prefix[i] += 1;
            for b in &mut prefix[i + 1..] {
                *b = 0;
            }
            return true;
        }
        // carry through
    }
    false
}

impl RangeFilter for PrefixBloomFilter {
    fn may_contain_range(&self, start: &[u8], end: &[u8]) -> bool {
        if start >= end {
            return false;
        }
        let last = pad(end, self.prefix_len);
        // The prefix of `end` itself contains in-range keys when `end`
        // extends strictly beyond the prefix (end = "user03x": keys
        // "user03a..w" are < end) or when `end` ends in a zero byte, whose
        // stripped form is a shorter key < end with the same padded prefix
        // ("a\x00" excludes nothing: "a" pads identically and is < end).
        let include_last = end.len() > self.prefix_len || end.last() == Some(&0);
        let mut p = pad(start, self.prefix_len);
        for _ in 0..self.max_enumeration {
            let in_bounds = p < last || (p == last && include_last);
            if !in_bounds {
                return false;
            }
            if self.bloom.may_contain(&p) {
                return true;
            }
            if !increment(&mut p) {
                return false;
            }
        }
        true // too many prefixes to enumerate: cannot rule the range out
    }

    fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(&pad(key, self.prefix_len))
    }

    fn memory_bits(&self) -> usize {
        self.bloom.memory_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[&str], plen: usize) -> PrefixBloomFilter {
        let raw: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        PrefixBloomFilter::build(&raw, plen, 16.0)
    }

    #[test]
    fn point_probe_via_prefix() {
        let f = build(&["user01#a", "user01#b", "user07#x"], 6);
        assert!(f.may_contain(b"user01#zzz"), "same prefix: maybe");
        assert!(f.may_contain(b"user07#anything"));
        assert!(!f.may_contain(b"user99#a"));
    }

    #[test]
    fn range_within_single_prefix() {
        let f = build(&["user01#a", "user07#x"], 6);
        assert!(f.may_contain_range(b"user01#a", b"user01#z"));
        assert!(!f.may_contain_range(b"user03#a", b"user03#z"));
    }

    #[test]
    fn range_spanning_prefixes_enumerates() {
        let f = build(&["b-key", "x-key"], 1);
        // [c, f) spans prefixes c, d, e — none present.
        assert!(!f.may_contain_range(b"c", b"f"));
        // [a, c) includes prefix b.
        assert!(f.may_contain_range(b"a", b"c"));
    }

    #[test]
    fn end_prefix_inclusion_rules() {
        let f = build(&["user03#m"], 6);
        // end extends beyond the prefix: "user03" keys below it count.
        assert!(f.may_contain_range(b"user03", b"user03#z"));
        // end exactly at the prefix boundary: "user03"-prefixed keys are
        // all >= end, so the range is empty of them.
        assert!(!f.may_contain_range(b"user02", b"user03"));
    }

    #[test]
    fn short_keys_are_padded_not_lost() {
        let f = build(&["us"], 6);
        assert!(f.may_contain(b"us"));
        // The padded prefix "us\0\0\0\0" lies in [u, v) but enumeration
        // from "u\0\0\0\0\0" cannot reach it in 64 steps; the filter must
        // answer "maybe" (true), never a false negative.
        assert!(f.may_contain_range(b"u", b"v"));
        // An exactly-aligned probe still works.
        assert!(f.may_contain_range(b"us", b"us\x01"));
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let f = build(&["abc"], 2);
        assert!(!f.may_contain_range(b"zz", b"aa"));
        assert!(!f.may_contain_range(b"ab", b"ab"));
    }

    #[test]
    fn huge_span_answers_maybe() {
        let f = build(&["mmmm"], 1);
        assert!(f.may_contain_range(&[0x00], &[0xff; 4]));
    }

    #[test]
    fn increment_arithmetic() {
        let mut p = b"aa".to_vec();
        assert!(increment(&mut p));
        assert_eq!(p, b"ab");
        let mut p = vec![0x61, 0xff];
        assert!(increment(&mut p));
        assert_eq!(p, vec![0x62, 0x00], "carry resets low bytes");
        let mut p = vec![0xff, 0xff];
        assert!(!increment(&mut p));
    }
}
