//! Standard and register-blocked Bloom filters.

use lsm_types::encoding::{put_u32, Decoder};
use lsm_types::{Error, Result};

use crate::hash::{hash_pair, probe};
use crate::PointFilter;

/// The classic Bloom filter: `k = bits_per_key * ln 2` hash probes into one
/// large bit array. Per-run Bloom filters are what let an LSM point lookup
/// skip runs that cannot contain the key (tutorial §2.1.3).
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_probes: u32,
}

/// Optimal probe count for a bits-per-key budget, clamped to `[1, 30]`.
pub fn optimal_probes(bits_per_key: f64) -> u32 {
    ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30)
}

/// Theoretical false-positive rate of a Bloom filter with `bits_per_key`
/// bits per key and the optimal probe count: `(1/2)^(bits_per_key * ln 2)`.
pub fn theoretical_fp_rate(bits_per_key: f64) -> f64 {
    if bits_per_key <= 0.0 {
        return 1.0;
    }
    0.5f64.powf(bits_per_key * std::f64::consts::LN_2)
}

impl BloomFilter {
    /// Builds a filter over `keys` with a budget of `bits_per_key` bits per
    /// key (fractional budgets are honored in total size).
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let bits_per_key = bits_per_key.max(0.0);
        let num_bits = ((keys.len() as f64 * bits_per_key).ceil() as u64).max(64);
        let num_probes = optimal_probes(bits_per_key.max(1.0));
        let mut filter = BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_probes,
        };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    /// Creates an empty filter sized for `expected_keys`.
    pub fn with_capacity(expected_keys: usize, bits_per_key: f64) -> Self {
        let num_bits = ((expected_keys as f64 * bits_per_key).ceil() as u64).max(64);
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64) as usize],
            num_bits,
            num_probes: optimal_probes(bits_per_key.max(1.0)),
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let pair = hash_pair(key);
        for i in 0..self.num_probes {
            let bit = probe(pair, i) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Serialized form: `u32 probes | u32 bits_len_words | words...`.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(data);
        let num_probes = dec.u32()?;
        let num_bits = dec.u64()?;
        let words = num_bits.div_ceil(64) as usize;
        if num_probes == 0 || num_probes > 64 || num_bits == 0 {
            return Err(Error::Corruption("implausible bloom header".into()));
        }
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(dec.u64()?);
        }
        Ok(BloomFilter {
            bits,
            num_bits,
            num_probes,
        })
    }

    /// Measured bit density (fraction of set bits), for diagnostics.
    pub fn density(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }
}

impl PointFilter for BloomFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        let pair = hash_pair(key);
        for i in 0..self.num_probes {
            let bit = probe(pair, i) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn memory_bits(&self) -> usize {
        self.bits.len() * 64
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12 + self.bits.len() * 8);
        put_u32(&mut buf, self.num_probes);
        lsm_types::encoding::put_u64(&mut buf, self.num_bits);
        for w in &self.bits {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }
}

/// A register-blocked Bloom filter: every key sets all of its probe bits
/// inside a single 64-byte (512-bit) block chosen by hash.
///
/// One cache line per probe instead of `k` scattered reads — the CPU-cost
/// optimization the tutorial discusses under filter design (§2.1.3, the
/// concern Ribbon/hash-sharing address). Costs ~1.3–2× the false-positive
/// rate of a standard Bloom at equal memory.
#[derive(Clone, Debug)]
pub struct BlockedBloomFilter {
    /// Blocks of 8 words (512 bits) each.
    words: Vec<u64>,
    num_blocks: u64,
    num_probes: u32,
}

const WORDS_PER_BLOCK: u64 = 8;

impl BlockedBloomFilter {
    /// Builds a filter over `keys` with `bits_per_key` bits per key.
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let total_bits = ((keys.len() as f64 * bits_per_key.max(0.0)).ceil() as u64).max(512);
        let num_blocks = total_bits.div_ceil(512).max(1);
        let mut filter = BlockedBloomFilter {
            words: vec![0u64; (num_blocks * WORDS_PER_BLOCK) as usize],
            num_blocks,
            num_probes: optimal_probes(bits_per_key.max(1.0)),
        };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let pair = hash_pair(key);
        let block = (pair.0 % self.num_blocks) * WORDS_PER_BLOCK;
        for i in 0..self.num_probes {
            // Derive in-block bit positions from the second hash only, so
            // the block choice and bit choices stay independent.
            let bit = probe((pair.1, pair.0.rotate_left(32)), i) % 512;
            self.words[(block + bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Deserializes the output of [`PointFilter::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(data);
        let num_probes = dec.u32()?;
        let num_blocks = dec.u64()?;
        if num_probes == 0 || num_probes > 64 || num_blocks == 0 {
            return Err(Error::Corruption("implausible blocked-bloom header".into()));
        }
        let words_len = (num_blocks * WORDS_PER_BLOCK) as usize;
        let mut words = Vec::with_capacity(words_len);
        for _ in 0..words_len {
            words.push(dec.u64()?);
        }
        Ok(BlockedBloomFilter {
            words,
            num_blocks,
            num_probes,
        })
    }
}

impl PointFilter for BlockedBloomFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        let pair = hash_pair(key);
        let block = (pair.0 % self.num_blocks) * WORDS_PER_BLOCK;
        for i in 0..self.num_probes {
            let bit = probe((pair.1, pair.0.rotate_left(32)), i) % 512;
            if self.words[(block + bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn memory_bits(&self) -> usize {
        self.words.len() * 64
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12 + self.words.len() * 8);
        put_u32(&mut buf, self.num_probes);
        lsm_types::encoding::put_u64(&mut buf, self.num_blocks);
        for w in &self.words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = BloomFilter::build(&refs(&ks), 10.0);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fp_rate_tracks_theory() {
        let ks = keys(10_000);
        for bpk in [4.0, 8.0, 12.0] {
            let f = BloomFilter::build(&refs(&ks), bpk);
            let mut fps = 0;
            let trials = 20_000;
            for i in 0..trials {
                let k = format!("absent{i:08}");
                if f.may_contain(k.as_bytes()) {
                    fps += 1;
                }
            }
            let measured = fps as f64 / trials as f64;
            let theory = theoretical_fp_rate(bpk);
            assert!(
                measured < theory * 2.0 + 0.002,
                "bpk={bpk}: measured {measured:.4} >> theory {theory:.4}"
            );
        }
    }

    #[test]
    fn blocked_no_false_negatives_and_reasonable_fp() {
        let ks = keys(10_000);
        let f = BlockedBloomFilter::build(&refs(&ks), 10.0);
        for k in &ks {
            assert!(f.may_contain(k));
        }
        let mut fps = 0;
        let trials = 20_000;
        for i in 0..trials {
            if f.may_contain(format!("absent{i:08}").as_bytes()) {
                fps += 1;
            }
        }
        let measured = fps as f64 / trials as f64;
        // Blocked pays an FP premium but must stay in the same regime.
        assert!(
            measured < theoretical_fp_rate(10.0) * 4.0 + 0.002,
            "blocked FP {measured:.4} too high"
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let ks = keys(1000);
        let f = BloomFilter::build(&refs(&ks), 8.0);
        let back = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in &ks {
            assert!(back.may_contain(k));
        }
        assert_eq!(back.memory_bits(), f.memory_bits());

        let bf = BlockedBloomFilter::build(&refs(&ks), 8.0);
        let back = BlockedBloomFilter::from_bytes(&bf.to_bytes()).unwrap();
        for k in &ks {
            assert!(back.may_contain(k));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(&[1, 2, 3]).is_err());
        let mut buf = Vec::new();
        put_u32(&mut buf, 0); // zero probes: implausible
        lsm_types::encoding::put_u64(&mut buf, 64);
        assert!(BloomFilter::from_bytes(&buf).is_err());
    }

    #[test]
    fn empty_key_set() {
        let f = BloomFilter::build(&[], 10.0);
        // An empty filter may return anything but must not panic; with no
        // bits set it definitively excludes.
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn optimal_probes_sane() {
        assert_eq!(optimal_probes(10.0), 7);
        assert_eq!(optimal_probes(1.0), 1);
        assert!(optimal_probes(100.0) <= 30);
    }

    #[test]
    fn density_about_half_at_optimum() {
        let ks = keys(10_000);
        let f = BloomFilter::build(&refs(&ks), 10.0);
        let d = f.density();
        assert!((0.4..0.6).contains(&d), "density {d}");
    }
}
