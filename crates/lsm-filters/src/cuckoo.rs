//! A cuckoo filter: deletable fingerprints in a 4-way bucketed table.
//!
//! Cuckoo filters (Fan et al.) store a short fingerprint of each key in one
//! of two buckets determined by partial-key cuckoo hashing. Compared to a
//! Bloom filter they support deletion and win space below ~3% false-positive
//! rates; Chucky (tutorial §2.1.3) builds its LSM-wide updatable index on
//! exactly this structure.

use lsm_types::encoding::{put_u32, put_u64, Decoder};
use lsm_types::{Error, Result};

use crate::hash::hash64;
use crate::PointFilter;

const SLOTS_PER_BUCKET: usize = 4;
const MAX_KICKS: usize = 500;

/// A 4-way cuckoo filter with 12-bit fingerprints (stored in u16 slots;
/// 0 marks an empty slot).
#[derive(Clone, Debug)]
pub struct CuckooFilter {
    slots: Vec<u16>,
    num_buckets: u64,
    len: usize,
    /// Set when an insert had to give up after `MAX_KICKS` displacements;
    /// the filter stays correct (no false negatives for stored keys) but the
    /// victim key was re-inserted nowhere, so we remember to answer `true`
    /// for everything — the safe degradation.
    saturated: bool,
}

fn fingerprint(key: &[u8]) -> u16 {
    // 12-bit fingerprint, never zero (zero marks empty slots).
    let h = hash64(key, 0x5bd1_e995);
    let fp = (h & 0xfff) as u16;
    if fp == 0 {
        1
    } else {
        fp
    }
}

impl CuckooFilter {
    /// Builds a filter over `keys`; `bits_per_key` determines the table
    /// size (16 bits per slot, ~95% max load factor).
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        // slots needed = keys / load_factor; buckets = slots / 4.
        let min_slots = (keys.len() as f64 / 0.95).ceil() as u64 + SLOTS_PER_BUCKET as u64;
        let budget_slots = (keys.len() as f64 * bits_per_key / 16.0).ceil() as u64;
        let slots = budget_slots.max(min_slots).max(8);
        let num_buckets = (slots.div_ceil(SLOTS_PER_BUCKET as u64)).next_power_of_two();
        let mut f = CuckooFilter {
            slots: vec![0u16; (num_buckets * SLOTS_PER_BUCKET as u64) as usize],
            num_buckets,
            len: 0,
            saturated: false,
        };
        for key in keys {
            f.insert(key);
        }
        f
    }

    fn bucket_of(&self, key: &[u8]) -> u64 {
        hash64(key, 0xdead_beef) % self.num_buckets
    }

    fn alt_bucket(&self, bucket: u64, fp: u16) -> u64 {
        // Partial-key cuckoo hashing: the alternate bucket is derived from
        // the fingerprint alone so it is computable during kicks.
        (bucket ^ (hash64(&fp.to_le_bytes(), 0xc0ff_ee00) % self.num_buckets)) % self.num_buckets
    }

    fn try_place(&mut self, bucket: u64, fp: u16) -> bool {
        let base = (bucket * SLOTS_PER_BUCKET as u64) as usize;
        for s in 0..SLOTS_PER_BUCKET {
            if self.slots[base + s] == 0 {
                self.slots[base + s] = fp;
                return true;
            }
        }
        false
    }

    /// Inserts a key. Returns `false` if the table saturated (the filter
    /// then degrades to answering `true` for every probe).
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let fp = fingerprint(key);
        let b1 = self.bucket_of(key);
        let b2 = self.alt_bucket(b1, fp);
        self.len += 1;
        if self.try_place(b1, fp) || self.try_place(b2, fp) {
            return true;
        }
        // Kick a random-ish victim around until something sticks.
        let mut bucket = if (fp as u64) & 1 == 0 { b1 } else { b2 };
        let mut fp = fp;
        for kick in 0..MAX_KICKS {
            let slot = (hash64(&(kick as u64).to_le_bytes(), bucket) as usize) % SLOTS_PER_BUCKET;
            let idx = (bucket * SLOTS_PER_BUCKET as u64) as usize + slot;
            std::mem::swap(&mut fp, &mut self.slots[idx]);
            bucket = self.alt_bucket(bucket, fp);
            if self.try_place(bucket, fp) {
                return true;
            }
        }
        self.saturated = true;
        false
    }

    /// Removes one copy of `key`'s fingerprint, if present. Returns whether
    /// a fingerprint was removed. (Deleting a never-inserted key can evict a
    /// colliding key's fingerprint — the standard cuckoo-filter caveat; only
    /// delete keys you inserted.)
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let fp = fingerprint(key);
        let b1 = self.bucket_of(key);
        let b2 = self.alt_bucket(b1, fp);
        for bucket in [b1, b2] {
            let base = (bucket * SLOTS_PER_BUCKET as u64) as usize;
            for s in 0..SLOTS_PER_BUCKET {
                if self.slots[base + s] == fp {
                    self.slots[base + s] = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Number of fingerprints stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the filter is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deserializes the output of [`PointFilter::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(data);
        let num_buckets = dec.u64()?;
        let len = dec.u32()? as usize;
        let saturated = dec.u8()? != 0;
        if num_buckets == 0 || !num_buckets.is_power_of_two() {
            return Err(Error::Corruption("implausible cuckoo header".into()));
        }
        let n_slots = (num_buckets * SLOTS_PER_BUCKET as u64) as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let b = dec.bytes(2)?;
            slots.push(u16::from_le_bytes([b[0], b[1]]));
        }
        Ok(CuckooFilter {
            slots,
            num_buckets,
            len,
            saturated,
        })
    }
}

impl PointFilter for CuckooFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        if self.saturated {
            return true;
        }
        let fp = fingerprint(key);
        let b1 = self.bucket_of(key);
        let b2 = self.alt_bucket(b1, fp);
        for bucket in [b1, b2] {
            let base = (bucket * SLOTS_PER_BUCKET as u64) as usize;
            for s in 0..SLOTS_PER_BUCKET {
                if self.slots[base + s] == fp {
                    return true;
                }
            }
        }
        false
    }

    fn memory_bits(&self) -> usize {
        self.slots.len() * 16
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(13 + self.slots.len() * 2);
        put_u64(&mut buf, self.num_buckets);
        put_u32(&mut buf, self.len as u32);
        buf.push(self.saturated as u8);
        for s in &self.slots {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("ckey{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(10_000);
        let f = CuckooFilter::build(&refs(&ks), 16.0);
        for k in &ks {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fp_rate_in_regime() {
        let ks = keys(10_000);
        let f = CuckooFilter::build(&refs(&ks), 16.0);
        let mut fps = 0;
        let trials = 20_000;
        for i in 0..trials {
            if f.may_contain(format!("absent{i:08}").as_bytes()) {
                fps += 1;
            }
        }
        let measured = fps as f64 / trials as f64;
        // 12-bit fingerprints, 4-way buckets: theory ~ 2*4/2^12 ≈ 0.2%.
        assert!(measured < 0.02, "cuckoo FP {measured:.4} too high");
    }

    #[test]
    fn delete_restores_negative() {
        let ks = keys(100);
        let mut f = CuckooFilter::build(&refs(&ks), 20.0);
        assert!(f.may_contain(b"ckey00000007"));
        assert!(f.delete(b"ckey00000007"));
        // After deleting, a lookup may still collide with another stored
        // fingerprint, but the canonical case returns false.
        // Verify at least that delete decremented and re-insert works.
        assert_eq!(f.len(), 99);
        f.insert(b"ckey00000007");
        assert!(f.may_contain(b"ckey00000007"));
    }

    #[test]
    fn alt_bucket_is_involution() {
        let f = CuckooFilter::build(&refs(&keys(16)), 16.0);
        for key in ["a", "b", "c", "longer-key"] {
            let fp = fingerprint(key.as_bytes());
            let b1 = f.bucket_of(key.as_bytes());
            let b2 = f.alt_bucket(b1, fp);
            assert_eq!(
                f.alt_bucket(b2, fp),
                b1,
                "alt(alt(b)) must return to b (needed for kicks)"
            );
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let ks = keys(500);
        let f = CuckooFilter::build(&refs(&ks), 16.0);
        let back = CuckooFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in &ks {
            assert!(back.may_contain(k));
        }
        assert_eq!(back.len(), f.len());
    }

    #[test]
    fn overfull_filter_degrades_safely() {
        // Force saturation by giving a tiny budget relative to keys.
        let ks = keys(4000);
        let refs: Vec<&[u8]> = ks.iter().map(|k| k.as_slice()).collect();
        let mut f = CuckooFilter {
            slots: vec![0u16; 64 * SLOTS_PER_BUCKET],
            num_buckets: 64,
            len: 0,
            saturated: false,
        };
        for k in &refs {
            f.insert(k);
        }
        assert!(f.saturated);
        // Saturated filter must never produce a false negative.
        for k in &refs {
            assert!(f.may_contain(k));
        }
    }
}
