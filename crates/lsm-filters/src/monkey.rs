//! Monkey: optimal allocation of filter memory across levels.
//!
//! Dayan et al. (SIGMOD'17) observed that LSM engines classically give every
//! level the same bits-per-key, which is suboptimal: the expected I/O cost
//! of a point lookup is the *sum of false-positive rates* across runs, and a
//! bit of memory spent on a small shallow level reduces that sum more than
//! the same bit spread across the huge last level. Minimizing
//! `Σ N_i · exp(-b_i · ln²2)`-style costs subject to `Σ N_i · b_i = M`
//! yields false-positive rates *proportional to level size* — deeper levels
//! get exponentially higher FP rates, and below a threshold no filter at
//! all.
//!
//! [`allocate`] solves exactly that program (with the `b_i ≥ 0` clamp) by
//! bisection on the Lagrange multiplier.

use std::f64::consts::LN_2;

/// `ln²2`: FP rate of a Bloom filter with `b` bits/key is `exp(-b · LN2SQ)`.
const LN2SQ: f64 = LN_2 * LN_2;

/// The optimal bits-per-entry for each level.
///
/// * `entries[i]` — number of entries in level `i`'s runs.
/// * `total_bits` — the overall filter-memory budget in bits.
///
/// Returns one bits-per-entry value per level (possibly `0.0` for the
/// deepest levels when the budget is tight). The allocation satisfies
/// `Σ entries[i] * out[i] ≈ total_bits`.
pub fn allocate(entries: &[u64], total_bits: f64) -> Vec<f64> {
    if entries.is_empty() || total_bits <= 0.0 {
        return vec![0.0; entries.len()];
    }
    let n: Vec<f64> = entries.iter().map(|&e| (e.max(1)) as f64).collect();

    // b_i(λ) = max(0, -(ln λ + ln N_i) / LN2SQ); total spend is decreasing
    // in λ, so bisect λ in log space.
    let spend = |ln_lambda: f64| -> f64 {
        n.iter()
            .map(|&ni| {
                let b = -(ln_lambda + ni.ln()) / LN2SQ;
                ni * b.max(0.0)
            })
            .sum()
    };

    let mut lo = -200.0; // λ -> 0: huge allocation
    let mut hi = 200.0; // λ -> inf: zero allocation
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if spend(mid) > total_bits {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let ln_lambda = 0.5 * (lo + hi);
    n.iter()
        .map(|&ni| (-(ln_lambda + ni.ln()) / LN2SQ).max(0.0))
        .collect()
}

/// The classical baseline: the same bits-per-entry everywhere.
pub fn uniform(entries: &[u64], total_bits: f64) -> Vec<f64> {
    let total_entries: u64 = entries.iter().sum();
    if total_entries == 0 {
        return vec![0.0; entries.len()];
    }
    let bpk = total_bits / total_entries as f64;
    vec![bpk; entries.len()]
}

/// Expected false-positive rate of a level given its bits-per-entry.
pub fn fp_rate(bits_per_entry: f64) -> f64 {
    if bits_per_entry <= 0.0 {
        1.0
    } else {
        (-bits_per_entry * LN2SQ).exp()
    }
}

/// The expected number of superfluous run probes for a zero-result point
/// lookup: the sum of per-level FP rates weighted by `runs_per_level`.
pub fn expected_false_probes(bits_per_entry: &[f64], runs_per_level: &[usize]) -> f64 {
    bits_per_entry
        .iter()
        .zip(runs_per_level)
        .map(|(&b, &r)| fp_rate(b) * r as f64)
        .sum()
}

/// Total bits consumed by an allocation.
pub fn total_bits(entries: &[u64], bits_per_entry: &[f64]) -> f64 {
    entries
        .iter()
        .zip(bits_per_entry)
        .map(|(&n, &b)| n as f64 * b)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A leveled tree with size ratio 10: levels of 1e4 .. 1e7 entries.
    fn tree() -> Vec<u64> {
        vec![10_000, 100_000, 1_000_000, 10_000_000]
    }

    #[test]
    fn allocation_spends_the_budget() {
        let entries = tree();
        let budget = 8.0 * entries.iter().sum::<u64>() as f64; // 8 bits/entry overall
        let alloc = allocate(&entries, budget);
        let spent = total_bits(&entries, &alloc);
        assert!(
            (spent - budget).abs() / budget < 1e-6,
            "spent {spent} vs budget {budget}"
        );
    }

    #[test]
    fn shallow_levels_get_more_bits() {
        let entries = tree();
        let alloc = allocate(&entries, 8.0 * entries.iter().sum::<u64>() as f64);
        for w in alloc.windows(2) {
            assert!(
                w[0] > w[1],
                "bits/entry must decrease with depth: {alloc:?}"
            );
        }
    }

    #[test]
    fn monkey_beats_uniform_on_expected_probes() {
        let entries = tree();
        let budget = 5.0 * entries.iter().sum::<u64>() as f64;
        let runs = vec![1usize; entries.len()];
        let m = expected_false_probes(&allocate(&entries, budget), &runs);
        let u = expected_false_probes(&uniform(&entries, budget), &runs);
        assert!(m < u, "monkey {m} must beat uniform {u}");
        // And substantially so for a size-ratio-10 tree.
        assert!(m < u * 0.8, "monkey {m} vs uniform {u}: expected >20% win");
    }

    #[test]
    fn tight_budget_zeroes_deep_levels_first() {
        let entries = tree();
        // A budget so small only shallow levels deserve filters.
        let alloc = allocate(&entries, 0.5 * entries.iter().sum::<u64>() as f64);
        assert!(alloc[0] > 0.0);
        assert_eq!(
            *alloc.last().unwrap(),
            0.0,
            "last level unfiltered: {alloc:?}"
        );
    }

    #[test]
    fn fp_proportional_to_level_size_when_unclamped() {
        let entries = tree();
        let alloc = allocate(&entries, 12.0 * entries.iter().sum::<u64>() as f64);
        // FP_i / N_i constant across levels (Lagrange condition).
        let ratios: Vec<f64> = alloc
            .iter()
            .zip(&entries)
            .map(|(&b, &n)| fp_rate(b) / n as f64)
            .collect();
        for w in ratios.windows(2) {
            assert!(
                (w[0] - w[1]).abs() / w[0] < 1e-3,
                "FP not proportional to size: {ratios:?}"
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(allocate(&[], 100.0).is_empty());
        assert_eq!(allocate(&[100], 0.0), vec![0.0]);
        assert_eq!(uniform(&[], 100.0), Vec::<f64>::new());
        assert_eq!(fp_rate(0.0), 1.0);
        assert!(fp_rate(10.0) < 0.01);
    }

    #[test]
    fn single_level_gets_everything() {
        let alloc = allocate(&[1000], 10_000.0);
        assert!((alloc[0] - 10.0).abs() < 1e-6);
    }
}
