//! The one property every filter must uphold: no false negatives.

use lsm_filters::{
    build_point_filter, PointFilterKind, PrefixBloomFilter, RangeFilter, RosettaFilter, SurfFilter,
};
use proptest::prelude::*;

fn arb_keys() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_filters_never_lose_keys(keys in arb_keys(), bpk in 2.0f64..20.0) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for kind in [PointFilterKind::Bloom, PointFilterKind::BlockedBloom, PointFilterKind::Cuckoo] {
            let f = build_point_filter(kind, &refs, bpk).unwrap();
            for k in &refs {
                prop_assert!(f.may_contain(k), "{kind:?} lost a key at bpk={bpk}");
            }
        }
    }

    #[test]
    fn surf_never_loses_points_or_ranges(keys in arb_keys(), suffix_bits in 0u32..=8) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = SurfFilter::build(&refs, suffix_bits);
        for k in &refs {
            prop_assert!(f.may_contain(k));
            let mut end = k.to_vec();
            end.push(0);
            prop_assert!(f.may_contain_range(k, &end));
        }
    }

    #[test]
    fn rosetta_never_loses_points_or_ranges(keys in arb_keys()) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = RosettaFilter::build(&refs, 20.0);
        for k in &refs {
            prop_assert!(f.may_contain(k));
            let mut end = k.to_vec();
            end.push(0);
            prop_assert!(f.may_contain_range(k, &end));
        }
    }

    #[test]
    fn prefix_bloom_never_loses_points_or_ranges(
        keys in arb_keys(),
        prefix_len in 1usize..12,
    ) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = PrefixBloomFilter::build(&refs, prefix_len, 16.0);
        for k in &refs {
            prop_assert!(f.may_contain(k));
            let mut end = k.to_vec();
            end.push(0);
            prop_assert!(f.may_contain_range(k, &end));
        }
    }

    #[test]
    fn range_filters_agree_range_contains_point(
        keys in arb_keys(),
        probe in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        // If a point may be present, any range containing it may be
        // non-empty (monotonicity of the filter's answers).
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let surf = SurfFilter::build(&refs, 4);
        let mut end = probe.clone();
        end.push(0);
        if surf.may_contain(&probe) {
            prop_assert!(surf.may_contain_range(&probe, &end));
        }
        let ros = RosettaFilter::build(&refs, 16.0);
        if ros.may_contain(&probe) {
            prop_assert!(ros.may_contain_range(&probe, &end));
        }
    }
}
