//! Loom model of the leader/follower group-commit pipeline.
//!
//! This mirrors `lsm_core::Db::commit_write` / `drain_group` /
//! `commit_group` line-for-line at the synchronization level — same locks
//! at the same ranks (`db.write_mx` below `db.commit_mx`), same
//! enqueue/at-front/leader/park structure, same flag and notify order —
//! with the WAL and memtable abstracted to watermark counters. The model
//! checker (`cargo test -p lsm-sync --features loom`) then explores every
//! interleaving within the preemption bound and asserts the three
//! properties the pipeline exists to provide:
//!
//! 1. **Seqno contiguity** — groups commit over disjoint, gapless seqno
//!    ranges (two leaders in flight would collide at the publish check).
//! 2. **Single append / at most one sync per group** — batching actually
//!    batches.
//! 3. **Acknowledged == durable** — a writer that observes `done` finds
//!    its last seqno at or below the durable watermark (synced for
//!    `sync` writes, appended otherwise).
//!
//! The untimed-wait variants additionally prove the wakeup protocol has
//! no lost-notification schedule: the real code's `wait_for` timeout is a
//! safety net, and these tests show the net is never load-bearing. A final
//! test seeds the PR-5-style ack-before-durable bug into the model and
//! asserts the checker reports a counterexample — without it, a green run
//! would prove only that the harness is blind.

#![cfg(feature = "loom")]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use lsm_sync::{ranks, Condvar, OrderedMutex};

/// One writer's pending request (models `CommitRequest`).
struct Req {
    n_ops: u64,
    want_sync: bool,
    done: AtomicBool,
    /// Last seqno assigned to this request by its group's leader.
    seqno_hi: AtomicU64,
}

/// The shared pipeline state (models the `Db` fields the write path uses).
struct Pipeline {
    commit_mx: OrderedMutex<VecDeque<Arc<Req>>>,
    commit_cv: Condvar,
    /// The single-writer ticket; the counters it guards are leader-only.
    write_mx: OrderedMutex<Counters>,
    /// WAL watermarks (highest seqno appended / fsynced).
    appended_hi: AtomicU64,
    synced_hi: AtomicU64,
    seqno: AtomicU64,
    max_group_ops: u64,
}

#[derive(Default)]
struct Counters {
    groups: u64,
    appends: u64,
    syncs: u64,
}

impl Pipeline {
    fn new(max_group_ops: u64) -> Self {
        Self {
            commit_mx: OrderedMutex::new(ranks::DB_COMMIT, VecDeque::new()),
            commit_cv: Condvar::new(),
            write_mx: OrderedMutex::new(ranks::DB_WRITE, Counters::default()),
            appended_hi: AtomicU64::new(0),
            synced_hi: AtomicU64::new(0),
            seqno: AtomicU64::new(0),
            max_group_ops,
        }
    }
}

/// Mirrors `DbInner::drain_group`: pop a non-empty queue prefix bounded by
/// `max_group_ops`; the first request always joins.
fn drain_group(p: &Pipeline) -> Vec<Arc<Req>> {
    let mut q = p.commit_mx.lock();
    let mut group = Vec::new();
    let mut ops = 0u64;
    while let Some(front) = q.front() {
        if !group.is_empty() && ops + front.n_ops > p.max_group_ops {
            break;
        }
        ops += front.n_ops;
        let r = q.pop_front().expect("front exists");
        group.push(r);
    }
    group
}

/// Mirrors `DbInner::commit_group`: assign a contiguous seqno range, one
/// append, at most one sync, then publish. Caller holds `write_mx`.
fn commit_group(p: &Pipeline, c: &mut Counters, group: &[Arc<Req>]) {
    let base = p.seqno.load(Ordering::Acquire);
    let mut n = 0u64;
    let mut want_sync = false;
    for r in group {
        n += r.n_ops;
        r.seqno_hi.store(base + n, Ordering::Release);
        want_sync |= r.want_sync;
    }
    c.groups += 1;
    c.appends += 1;
    p.appended_hi.store(base + n, Ordering::Release);
    if want_sync {
        c.syncs += 1;
        p.synced_hi.store(base + n, Ordering::Release);
    }
    // Contiguity: nobody else advanced the seqno while this group was in
    // flight (that is exactly what holding `write_mx` guarantees).
    let cur = p.seqno.load(Ordering::Acquire);
    assert_eq!(cur, base, "two leaders in flight: seqno moved under us");
    p.seqno.store(base + n, Ordering::Release);
}

/// Mirrors `DbInner::commit_write`. `untimed` parks followers on a plain
/// `wait` instead of `wait_for`, turning any lost wakeup into a model
/// deadlock (the real code's timeout is a safety net, not the protocol).
fn commit_write(p: &Pipeline, req: &Arc<Req>, untimed: bool) {
    p.commit_mx.lock().push_back(Arc::clone(req));
    loop {
        if req.done.load(Ordering::Acquire) {
            break;
        }
        let at_front = {
            let q = p.commit_mx.lock();
            q.front().is_some_and(|f| Arc::ptr_eq(f, req))
        };
        if at_front {
            let mut writer = p.write_mx.lock();
            if req.done.load(Ordering::Acquire) {
                break; // the previous leader drained us meanwhile
            }
            let group = drain_group(p);
            assert!(
                group.iter().any(|r| Arc::ptr_eq(r, req)),
                "drains take a queue prefix, so the front request joins"
            );
            commit_group(p, &mut writer, &group);
            for r in &group {
                r.done.store(true, Ordering::Release);
            }
            drop(writer);
            {
                let _q = p.commit_mx.lock();
                p.commit_cv.notify_all();
            }
            break;
        }
        let mut q = p.commit_mx.lock();
        if req.done.load(Ordering::Acquire) {
            break;
        }
        if q.front().is_some_and(|f| Arc::ptr_eq(f, req)) {
            continue; // promoted to front while taking the lock
        }
        if untimed {
            p.commit_cv.wait(&mut q);
        } else {
            let _ = p.commit_cv.wait_for(&mut q, Duration::from_millis(50));
        }
    }
    // Acknowledged == durable: observing `done` means this request's whole
    // seqno range is already on (modeled) stable storage.
    let hi = req.seqno_hi.load(Ordering::Acquire);
    let durable = if req.want_sync {
        p.synced_hi.load(Ordering::Acquire)
    } else {
        p.appended_hi.load(Ordering::Acquire)
    };
    assert!(
        hi <= durable,
        "acked seqno {hi} beyond the durable watermark {durable}"
    );
}

/// Explores every schedule of `writers` concurrent commits and checks the
/// end-state invariants after all of them acked.
fn check_pipeline(writers: usize, max_group_ops: u64, untimed: bool) {
    loom::model(move || {
        let p = Arc::new(Pipeline::new(max_group_ops));
        let mut reqs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..writers {
            let req = Arc::new(Req {
                n_ops: (i as u64 % 2) + 1, // mixed sizes exercise the bound
                want_sync: i % 2 == 0,
                done: AtomicBool::new(false),
                seqno_hi: AtomicU64::new(0),
            });
            reqs.push(Arc::clone(&req));
            let p2 = Arc::clone(&p);
            handles.push(loom::thread::spawn(move || {
                commit_write(&p2, &req, untimed);
            }));
        }
        for h in handles {
            h.join().expect("writer completes");
        }

        let total: u64 = reqs.iter().map(|r| r.n_ops).sum();
        assert_eq!(
            p.seqno.load(Ordering::Acquire),
            total,
            "published seqno must equal the total committed ops (no gaps, \
             no double-commit)"
        );
        assert!(p.commit_mx.lock().is_empty(), "queue fully drained");
        let c = p.write_mx.lock();
        assert_eq!(c.appends, c.groups, "exactly one WAL append per group");
        assert!(c.syncs <= c.groups, "at most one sync per group");
        assert!(
            p.synced_hi.load(Ordering::Acquire) <= p.appended_hi.load(Ordering::Acquire),
            "sync watermark cannot lead the append watermark"
        );
    });
}

#[test]
fn two_writers_one_group() {
    // Group bound large enough that one leader can absorb both requests.
    check_pipeline(2, 8, false);
}

#[test]
fn two_writers_forced_separate_groups() {
    // max_group_ops = 1 forces every multi-writer schedule to hand
    // leadership over, exercising front-promotion after a partial drain.
    check_pipeline(2, 1, false);
}

#[test]
fn three_writers_mixed_groups() {
    check_pipeline(3, 2, false);
}

#[test]
fn two_writers_untimed_wait_has_no_lost_wakeup() {
    // With a plain `wait`, a schedule that loses the leader's notify
    // deadlocks the model. Green means the done-recheck-under-the-lock
    // protocol needs no timeout to make progress.
    check_pipeline(2, 8, true);
}

#[test]
fn three_writers_untimed_wait_has_no_lost_wakeup() {
    check_pipeline(3, 1, true);
}

/// Seeded regression: the PR-5 bug class — acking the group before its
/// WAL effects are durable. The model checker must produce a schedule
/// where a follower observes `done` and finds its seqno past the durable
/// watermark; if this test fails, the harness has gone blind.
#[test]
fn seeded_ack_before_durable_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let p = Arc::new(Pipeline::new(8));
            let mk = |n_ops| {
                Arc::new(Req {
                    n_ops,
                    want_sync: true,
                    done: AtomicBool::new(false),
                    seqno_hi: AtomicU64::new(0),
                })
            };
            let (ra, rb) = (mk(1), mk(1));
            p.commit_mx.lock().push_back(Arc::clone(&ra));
            p.commit_mx.lock().push_back(Arc::clone(&rb));

            // Buggy leader: assigns seqnos and acks the group *before*
            // appending/syncing (the durability stores land too late).
            let p2 = Arc::clone(&p);
            let (ra2, rb2) = (Arc::clone(&ra), Arc::clone(&rb));
            let leader = loom::thread::spawn(move || {
                let mut writer = p2.write_mx.lock();
                let group = drain_group(&p2);
                let base = p2.seqno.load(Ordering::Acquire);
                let mut n = 0u64;
                for r in &group {
                    n += r.n_ops;
                    r.seqno_hi.store(base + n, Ordering::Release);
                }
                for r in &group {
                    r.done.store(true, Ordering::Release); // BUG: ack first
                }
                p2.appended_hi.store(base + n, Ordering::Release);
                p2.synced_hi.store(base + n, Ordering::Release);
                p2.seqno.store(base + n, Ordering::Release);
                writer.groups += 1;
                drop(writer);
                let _q = p2.commit_mx.lock();
                p2.commit_cv.notify_all();
                drop((ra2, rb2));
            });

            // Follower: polls `done` exactly like commit_write's fast path,
            // then runs the at-ack durability check.
            let p3 = Arc::clone(&p);
            let follower = loom::thread::spawn(move || {
                while !rb.done.load(Ordering::Acquire) {
                    loom::thread::yield_now();
                }
                let hi = rb.seqno_hi.load(Ordering::Acquire);
                let durable = p3.synced_hi.load(Ordering::Acquire);
                assert!(
                    hi <= durable,
                    "acked seqno {hi} beyond the durable watermark {durable}"
                );
            });

            leader.join().expect("leader completes");
            follower.join().expect("follower completes");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model checker missed the seeded ack-before-durable bug"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(
        msg.contains("counterexample") && msg.contains("durable watermark"),
        "report must cite the schedule and the violated invariant: {msg}"
    );
}
