//! Loom models of the engine's three lock-free publication protocols.
//!
//! Where `loom_commit.rs` checks the lock/condvar commit pipeline, these
//! models check the structures that publish *without* a lock, under the
//! vendored loom's store-buffer memory model (`Relaxed` stores may be
//! delayed past later operations until the thread's next release point —
//! see the loom crate docs). Each protocol gets a clean model that must
//! pass and a seeded-bug variant that the checker must catch; a green
//! seeded test is the proof the harness can actually see the bug class.
//!
//! 1. **Memtable occupancy** (`lsm-memtable::HashSkipListMemTable`):
//!    `len` is bumped with a Relaxed RMW *before* the shard write-lock
//!    insert, so a reader holding the shard read lock never counts more
//!    resident entries than `len` claims. Seeded bug: bump after insert.
//! 2. **Event-ring seqlock** (`lsm-obs::EventRing::push_at`/`events`):
//!    writers claim a slot via `head.fetch_add(Relaxed)`, invalidate
//!    (`seq = 0`, Release), write the payload with Relaxed stores, and
//!    publish (`seq = idx + 1`, Release); readers Acquire-load `seq` on
//!    both sides of the payload reads and drop torn slots. Seeded bug:
//!    the final publish downgraded to Relaxed — the payload can still sit
//!    in the writer's store buffer when `seq` lands, and the reader's
//!    double-check passes over a stale payload. Only the store-buffer
//!    model can catch this one; no interleaving of committed operations
//!    produces it.
//! 3. **Epoch pins** (`lsm-core`'s sharded `EpochPins`): `AcqRel` RMW
//!    pin/unpin counters must balance to zero and never unpin below one.
//!    Seeded bug: a load-then-store unpin loses a concurrent update.
//!
//! The models mirror the real code at the synchronization level with the
//! payloads reduced to a couple of words; slot payloads encode the claim
//! index so a stale read is detectable by value.

#![cfg(feature = "loom")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use lsm_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use lsm_sync::{ranks, OrderedRwLock};

// ------------------------------------------------ 1. memtable occupancy

/// One memtable shard plus the shared occupancy counter (models
/// `HashSkipListMemTable { shards, len, .. }` with the skiplist reduced
/// to a `Vec`).
struct Occupancy {
    shard: OrderedRwLock<Vec<u64>>,
    len: AtomicUsize,
}

impl Occupancy {
    fn new() -> Self {
        Self {
            shard: OrderedRwLock::new(ranks::MEMTABLE_INDEX, Vec::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Mirrors `HashSkipListMemTable::insert`: claim the occupancy first,
    /// then insert under the shard write lock.
    fn insert(&self, v: u64) {
        self.len.fetch_add(1, Ordering::Relaxed);
        self.shard.write().push(v);
    }

    /// The invariant a reader relies on: `len` is an upper bound on the
    /// entries resident in the shards (it may briefly overcount, never
    /// undercount).
    fn check(&self) {
        let guard = self.shard.read();
        let actual = guard.len();
        let claimed = self.len.load(Ordering::Relaxed);
        assert!(
            actual <= claimed,
            "memtable len undercounts resident entries: {actual} resident, {claimed} claimed"
        );
    }
}

#[test]
fn memtable_occupancy_never_undercounts() {
    loom::model(|| {
        let m = Arc::new(Occupancy::new());
        let m2 = Arc::clone(&m);
        let writer = loom::thread::spawn(move || {
            m2.insert(7);
        });
        let m3 = Arc::clone(&m);
        let reader = loom::thread::spawn(move || {
            m3.check();
        });
        writer.join().expect("writer completes");
        reader.join().expect("reader completes");
        assert_eq!(m.len.load(Ordering::Relaxed), 1);
        assert_eq!(m.shard.read().len(), 1);
    });
}

/// Seeded bug: bumping `len` *after* the locked insert lets a reader
/// count an entry the occupancy does not yet claim.
#[test]
fn seeded_len_after_insert_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let m = Arc::new(Occupancy::new());
            let m2 = Arc::clone(&m);
            let writer = loom::thread::spawn(move || {
                m2.shard.write().push(7);
                m2.len.fetch_add(1, Ordering::Relaxed); // BUG: claim last
            });
            let m3 = Arc::clone(&m);
            let reader = loom::thread::spawn(move || {
                m3.check();
            });
            writer.join().expect("writer completes");
            reader.join().expect("reader completes");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model checker missed the seeded late-claim bug"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(
        msg.contains("counterexample") && msg.contains("undercounts"),
        "report must cite the schedule and the violated invariant: {msg}"
    );
}

// ---------------------------------------------- 2. event-ring seqlock

/// One seqlock slot (models `lsm-obs`'s `Slot` with the payload reduced
/// to two words; both must be consistent for the invariant to hold).
struct Slot {
    seq: AtomicU64,
    w0: AtomicU64,
    a: AtomicU64,
}

/// The ring (models `EventRing { slots, head, mask }`).
struct Ring {
    slots: Vec<Slot>,
    head: AtomicU64,
    mask: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    w0: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    /// Mirrors `EventRing::push_at`: claim, invalidate, payload, publish.
    /// The payload words encode the claim index so a stale read is
    /// detectable: slot published as `seq = idx + 1` must carry
    /// `w0 = 100 + idx` and `a = 200 + idx`.
    fn push(&self, publish_order: Ordering) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.w0.store(100 + idx, Ordering::Relaxed);
        slot.a.store(200 + idx, Ordering::Relaxed);
        slot.seq.store(idx + 1, publish_order);
    }

    /// Mirrors `EventRing::events`: Acquire-load `seq` around the payload
    /// reads, drop invalid and torn slots, and assert that whatever
    /// survives the double-check is the payload the publish covered.
    fn check(&self) {
        for slot in &self.slots {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 {
                continue;
            }
            let w0 = slot.w0.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq1 {
                continue; // torn: a writer replaced the slot mid-read
            }
            let idx = seq1 - 1;
            assert!(
                w0 == 100 + idx && a == 200 + idx,
                "seqlock published a stale payload: seq {seq1} with w0={w0} a={a}"
            );
        }
    }
}

#[test]
fn event_ring_readers_never_see_stale_payloads() {
    loom::model(|| {
        let r = Arc::new(Ring::new(2));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let r2 = Arc::clone(&r);
                loom::thread::spawn(move || {
                    r2.push(Ordering::Release);
                })
            })
            .collect();
        let r3 = Arc::clone(&r);
        let reader = loom::thread::spawn(move || {
            r3.check();
        });
        for w in writers {
            w.join().expect("writer completes");
        }
        reader.join().expect("reader completes");
        // Both events are resident and consistent once the dust settles.
        r.check();
        assert_eq!(r.head.load(Ordering::Relaxed), 2);
    });
}

/// Seeded bug: the final `seq` publish downgraded to Relaxed. The payload
/// stores can then still sit in the writer's store buffer when the
/// publish commits, and a reader passes the double-check over the slot's
/// stale contents. This is exactly the bug class rule A1 pins statically;
/// interleaving alone cannot produce it — catching it proves the
/// store-buffer model works.
#[test]
fn seeded_relaxed_publish_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let r = Arc::new(Ring::new(1));
            let r2 = Arc::clone(&r);
            let writer = loom::thread::spawn(move || {
                r2.push(Ordering::Relaxed); // BUG: publish without Release
            });
            let r3 = Arc::clone(&r);
            let reader = loom::thread::spawn(move || {
                r3.check();
            });
            writer.join().expect("writer completes");
            reader.join().expect("reader completes");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model checker missed the seeded missing-Release publish"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(
        msg.contains("counterexample") && msg.contains("stale payload"),
        "report must cite the schedule and the violated invariant: {msg}"
    );
}

// --------------------------------------------------- 3. epoch pins

/// Mirrors the sharded engine's `epoch_pins` discipline: `AcqRel` RMWs on
/// pin and unpin, count never driven below zero, zero once every pinner
/// is done.
#[test]
fn epoch_pins_balance() {
    loom::model(|| {
        let pins = Arc::new(AtomicU64::new(0));
        let pinners: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pins);
                loom::thread::spawn(move || {
                    p.fetch_add(1, Ordering::AcqRel);
                    let prev = p.fetch_sub(1, Ordering::AcqRel);
                    assert!(prev >= 1, "unpin without a matching pin: prev {prev}");
                })
            })
            .collect();
        for h in pinners {
            h.join().expect("pinner completes");
        }
        assert_eq!(
            pins.load(Ordering::Acquire),
            0,
            "pin accounting must balance"
        );
    });
}

/// Seeded bug: unpin as a non-atomic load-then-store loses a concurrent
/// pinner's update, leaving the count unbalanced — the classic reason the
/// real code uses `fetch_sub` and the engine's freeze path may trust
/// `epoch_pins == 0`.
#[test]
fn seeded_nonatomic_unpin_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let pins = Arc::new(AtomicU64::new(0));
            let pinners: Vec<_> = (0..2)
                .map(|_| {
                    let p = Arc::clone(&pins);
                    loom::thread::spawn(move || {
                        p.fetch_add(1, Ordering::AcqRel);
                        // BUG: read-modify-write torn into two operations.
                        let v = p.load(Ordering::Acquire);
                        p.store(v.wrapping_sub(1), Ordering::Release);
                    })
                })
                .collect();
            for h in pinners {
                h.join().expect("pinner completes");
            }
            assert_eq!(
                pins.load(Ordering::Acquire),
                0,
                "pin accounting must balance"
            );
        });
    }));
    let msg = match result {
        Ok(()) => panic!("model checker missed the seeded lost-update unpin"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(
        msg.contains("counterexample") && msg.contains("balance"),
        "report must cite the schedule and the violated invariant: {msg}"
    );
}
