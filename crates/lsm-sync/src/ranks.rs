//! The workspace lock hierarchy.
//!
//! Every tracked lock in the engine is constructed with one of these ranks.
//! A thread may only acquire a lock whose rank is *strictly greater* than
//! every rank it already holds; the debug-build assertions in
//! [`crate::OrderedMutex`] / [`crate::OrderedRwLock`] enforce this, and the
//! static lock graph emitted by `lsm-lint` (`lock_order.json`) is
//! cross-checked against this table by `tests/lock_order_spec.rs` at the
//! workspace root.
//!
//! Gaps between orders are deliberate so future locks can slot in without
//! renumbering. When you add a lock:
//!
//! 1. add a constant here (and to [`REGISTRY`]),
//! 2. construct the lock with it,
//! 3. regenerate the spec: `cargo run -p lsm-lint -- --write-lock-order lock_order.json`.

use crate::LockRank;

/// `ShardedDb` cross-shard epoch ticket. Outermost lock in the whole
/// hierarchy: the router holds it across a multi-shard batch — coordinator
/// epoch-log writes plus one full commit per involved shard — so it must
/// rank below every per-engine lock those commits acquire.
pub const SHARDED_EPOCH: LockRank = LockRank::new("sharded.epoch_mx", 80);
/// Metrics-exporter control mutex (interval/shutdown condvar). The export
/// thread parks on it holding nothing else, and `stop()` signals it from
/// outside the engine's lock stack, so it ranks above the per-engine
/// hierarchy next to the sharding router.
pub const DB_METRICS_EXPORT: LockRank = LockRank::new("db.metrics_export_mx", 90);
/// `Db` single-writer queue ticket. Outermost engine lock: held across the
/// whole write path (WAL append, memtable insert, freeze).
pub const DB_WRITE: LockRank = LockRank::new("db.write_mx", 100);
/// `Db` group-commit queue (pending writer requests + the follower
/// condvar). Enqueued without other locks; the leader drains it while
/// holding `db.write_mx`, so it ranks directly above the writer ticket.
pub const DB_COMMIT: LockRank = LockRank::new("db.commit_mx", 105);
/// `Db` write-stall condvar mutex (waiters for immutable-memtable drain).
pub const DB_STALL: LockRank = LockRank::new("db.stall_mx", 110);
/// `Db` background-worker wakeup condvar mutex.
pub const DB_WORK: LockRank = LockRank::new("db.work_mx", 120);
/// `Db` manifest persistence ticket: serializes build-manifest +
/// `put_meta` so a save built from older state can never overwrite a
/// newer save (which would drop a live WAL segment from the manifest and
/// lose acknowledged writes on recovery). Ranks below `db.current` /
/// `db.mem` because the build acquires both while holding it.
pub const DB_MANIFEST: LockRank = LockRank::new("db.manifest_mx", 125);
/// `Db` current-version pointer (copy-on-write `Arc<Version>` swap).
pub const DB_CURRENT: LockRank = LockRank::new("db.current", 130);
/// `Db` live-snapshot refcount map.
pub const DB_SNAPSHOTS: LockRank = LockRank::new("db.snapshots", 140);
/// `Db` memtable state (active + immutable queue).
pub const DB_MEM: LockRank = LockRank::new("db.mem", 150);
/// `Db` maintenance scheduler (busy levels, flush set, cursors).
pub const DB_SCHED: LockRank = LockRank::new("db.sched", 160);
/// Per-memtable range-tombstone list (nested under `db.mem`).
pub const MEM_RTS: LockRank = LockRank::new("db.mem_handle.rts", 170);
/// `Db` sticky background-error slot.
pub const DB_BG_ERROR: LockRank = LockRank::new("db.bg_error", 180);
/// `Db` recovery-summary slot (written once at open).
pub const DB_RECOVERY: LockRank = LockRank::new("db.recovery", 185);
/// `Db` background-worker join handles (taken only at shutdown).
pub const DB_WORKERS: LockRank = LockRank::new("db.workers", 190);
/// Memtable index structure (skiplist / vector / btree / hash shard).
pub const MEMTABLE_INDEX: LockRank = LockRank::new("memtable.index", 210);
/// Memtable approximate-size counter (nested under `memtable.index`).
pub const MEMTABLE_SIZE: LockRank = LockRank::new("memtable.size", 220);
/// WiscKey value-log roster (segments, GC state, tail cursor).
pub const VLOG_STATE: LockRank = LockRank::new("vlog.state", 240);
/// WiscKey value-log recovery-summary slot.
pub const VLOG_RECOVERY: LockRank = LockRank::new("vlog.recovery", 250);
/// Block-cache shard (leaf: nothing may be acquired under it).
pub const CACHE_SHARD: LockRank = LockRank::new("cache.shard", 300);

/// Every rank in the hierarchy, keyed by the constant's identifier. The
/// linter resolves `OrderedMutex::new(ranks::<CONST>, ..)` construction
/// sites against this table (by parsing this file), and the workspace-root
/// spec test asserts `lock_order.json` agrees with it.
pub const REGISTRY: &[(&str, LockRank)] = &[
    ("SHARDED_EPOCH", SHARDED_EPOCH),
    ("DB_METRICS_EXPORT", DB_METRICS_EXPORT),
    ("DB_WRITE", DB_WRITE),
    ("DB_COMMIT", DB_COMMIT),
    ("DB_STALL", DB_STALL),
    ("DB_WORK", DB_WORK),
    ("DB_MANIFEST", DB_MANIFEST),
    ("DB_CURRENT", DB_CURRENT),
    ("DB_SNAPSHOTS", DB_SNAPSHOTS),
    ("DB_MEM", DB_MEM),
    ("DB_SCHED", DB_SCHED),
    ("MEM_RTS", MEM_RTS),
    ("DB_BG_ERROR", DB_BG_ERROR),
    ("DB_RECOVERY", DB_RECOVERY),
    ("DB_WORKERS", DB_WORKERS),
    ("MEMTABLE_INDEX", MEMTABLE_INDEX),
    ("MEMTABLE_SIZE", MEMTABLE_SIZE),
    ("VLOG_STATE", VLOG_STATE),
    ("VLOG_RECOVERY", VLOG_RECOVERY),
    ("CACHE_SHARD", CACHE_SHARD),
];
