//! Lock-order-enforcing synchronization primitives.
//!
//! The engine's concurrency invariant is a total order over its locks (the
//! ranks in [`ranks`], mirrored by the checked-in `lock_order.json` spec that
//! `lsm-lint` derives statically): a thread may only acquire a lock whose
//! rank is *strictly greater* than every rank it already holds. Acquiring in
//! increasing rank order on every thread makes lock-cycle deadlocks
//! impossible.
//!
//! [`OrderedMutex`] / [`OrderedRwLock`] wrap the `parking_lot` primitives and
//! enforce the invariant at runtime in debug and test builds via a
//! thread-local held-set; a violation panics naming both locks and the
//! expected ordering. In release builds the tracking compiles away and the
//! wrappers are plain `parking_lot` locks (one extra `LockRank` word per lock
//! instance, zero per-acquisition cost).
//!
//! Re-acquiring a rank already held by the same thread also panics — the
//! engine's locks are not reentrant, and a same-rank `RwLock::read` recursion
//! can still deadlock against a queued writer.
//!
//! With the `loom` feature the `parking_lot` backing is swapped for the
//! vendored `loom` model checker so `loom::model` can exhaustively explore
//! interleavings of code built on these primitives (the commit-pipeline
//! model in `tests/loom_commit.rs`). The rank checks stay active under
//! loom — the model threads are real threads, so the thread-local held-set
//! works unchanged. The only API difference: constructors are not `const`
//! under loom (each lock needs a runtime-allocated model identity).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

#[cfg(feature = "loom")]
use loom::sync as sync_impl;
#[cfg(not(feature = "loom"))]
use parking_lot as sync_impl;

pub use sync_impl::WaitTimeoutResult;

pub mod ranks;

pub mod atomic {
    //! Atomics that swap with the lock-free layer's model checker.
    //!
    //! Code (and loom models) that uses `lsm_sync::atomic::{AtomicU64, ..}`
    //! compiles against `std::sync::atomic` normally and against the
    //! vendored loom's store-buffer-modeled atomics under the `loom`
    //! feature, the same way the lock wrappers swap their backing. Only
    //! the types the engine's lock-free structures use are re-exported.

    #[cfg(feature = "loom")]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(feature = "loom"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// A named position in the workspace lock hierarchy (see [`ranks`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRank {
    name: &'static str,
    order: u32,
}

impl LockRank {
    /// Creates a rank. `order` is the position in the acquisition order:
    /// lower-ranked locks must be taken before higher-ranked ones.
    pub const fn new(name: &'static str, order: u32) -> Self {
        Self { name, order }
    }

    /// The lock's name as it appears in panics and `lock_order.json`.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's position in the acquisition order.
    pub const fn order(&self) -> u32 {
        self.order
    }
}

/// Debug-build thread-local held-set. Each entry is the rank of a lock the
/// current thread holds; acquisition asserts the new rank is strictly above
/// all of them. Threads hold at most a handful of locks, so a linear scan
/// over a small `Vec` beats any fancier structure.
#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(worst) = held.iter().max_by_key(|r| r.order()) {
                // A panic here is the contract: this module is the debug-mode
                // deadlock detector, and unwinding at the violating
                // acquisition site is exactly the diagnostic we want.
                assert!(
                    worst.order() < rank.order(),
                    "lock-order violation: thread acquiring `{}` (rank {}) while holding `{}` \
                     (rank {}); locks must be acquired in strictly increasing rank order \
                     — see lsm-sync::ranks and lock_order.json",
                    rank.name(),
                    rank.order(),
                    worst.name(),
                    worst.order(),
                );
            }
            held.push(rank);
        });
    }

    pub(super) fn release(rank: LockRank) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|r| r == &rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod held {
    use super::LockRank;
    #[inline(always)]
    pub(super) fn acquire(_rank: LockRank) {}
    #[inline(always)]
    pub(super) fn release(_rank: LockRank) {}
}

/// A `parking_lot::Mutex` that participates in the workspace lock hierarchy.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    inner: sync_impl::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex at the given rank.
    #[cfg(not(feature = "loom"))]
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: sync_impl::Mutex::new(value),
        }
    }

    /// Creates a mutex at the given rank (non-`const` under loom: the
    /// model checker assigns each lock a runtime identity).
    #[cfg(feature = "loom")]
    pub fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: sync_impl::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// The rank this mutex was constructed with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the mutex, asserting (debug builds) that its rank is above
    /// every rank the current thread already holds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        held::acquire(self.rank);
        OrderedMutexGuard {
            rank: self.rank,
            inner: self.inner.lock(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// Guard for [`OrderedMutex`]; releases the held-set entry on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    rank: LockRank,
    inner: sync_impl::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

/// A `parking_lot::RwLock` that participates in the workspace lock hierarchy.
///
/// Read and write acquisitions are tracked identically: even a shared read
/// below an already-held rank can deadlock (reader queued behind a writer
/// that is queued behind this thread), so the rank rule makes no distinction.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: sync_impl::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates an rwlock at the given rank.
    #[cfg(not(feature = "loom"))]
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: sync_impl::RwLock::new(value),
        }
    }

    /// Creates an rwlock at the given rank (non-`const` under loom: the
    /// model checker assigns each lock a runtime identity).
    #[cfg(feature = "loom")]
    pub fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: sync_impl::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// The rank this rwlock was constructed with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires shared access, asserting the rank order (debug builds).
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        held::acquire(self.rank);
        OrderedRwLockReadGuard {
            rank: self.rank,
            inner: self.inner.read(),
        }
    }

    /// Acquires exclusive access, asserting the rank order (debug builds).
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        held::acquire(self.rank);
        OrderedRwLockWriteGuard {
            rank: self.rank,
            inner: self.inner.write(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// Shared guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    rank: LockRank,
    inner: sync_impl::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

/// Exclusive guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    rank: LockRank,
    inner: sync_impl::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        held::release(self.rank);
    }
}

/// A condition variable paired with [`OrderedMutex`].
///
/// While a thread is parked in [`wait`](Self::wait) /
/// [`wait_for`](Self::wait_for) the mutex's rank stays in its held-set even
/// though the lock itself is released for the duration: the thread cannot
/// acquire anything while parked, and on wakeup it holds the mutex again, so
/// the conservative bookkeeping is both simple and sound.
#[derive(Default)]
pub struct Condvar {
    inner: sync_impl::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    #[cfg(not(feature = "loom"))]
    pub const fn new() -> Self {
        Self {
            inner: sync_impl::Condvar::new(),
        }
    }

    /// Creates a condition variable (non-`const` under loom: the model
    /// checker assigns each condvar a runtime identity).
    #[cfg(feature = "loom")]
    pub fn new() -> Self {
        Self {
            inner: sync_impl::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut OrderedMutexGuard<'_, T>) {
        self.inner.wait(&mut guard.inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.inner.wait_for(&mut guard.inner, timeout)
    }

    /// Wakes one parked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all parked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// Under the loom feature the primitives only function inside
// `loom::model` (the model scheduler owns every thread), so the plain
// unit tests are built against the parking_lot backing only; the loom
// configuration is covered by tests/loom_commit.rs.
#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    const LOW: LockRank = LockRank::new("test.low", 10);
    const HIGH: LockRank = LockRank::new("test.high", 20);

    #[test]
    fn increasing_order_is_allowed() {
        let a = OrderedMutex::new(LOW, 1u32);
        let b = OrderedRwLock::new(HIGH, 2u32);
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn reacquire_after_drop_is_allowed() {
        let a = OrderedMutex::new(LOW, 1u32);
        let b = OrderedMutex::new(HIGH, 2u32);
        drop(b.lock());
        // HIGH was released, so LOW is fine now.
        let ga = a.lock();
        assert_eq!(*ga, 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checks are debug-only")]
    #[should_panic(expected = "lock-order violation")]
    fn decreasing_order_panics() {
        let a = OrderedMutex::new(LOW, 1u32);
        let b = OrderedMutex::new(HIGH, 2u32);
        let _gb = b.lock();
        let _ga = a.lock(); // rank 10 under rank 20: must panic
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank checks are debug-only")]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_nesting_panics() {
        let a = OrderedRwLock::new(LOW, 1u32);
        let b = OrderedRwLock::new(LOW, 2u32);
        let _ga = a.read();
        let _gb = b.read(); // equal rank: not strictly increasing
    }

    #[test]
    fn rwlock_write_guard_is_tracked() {
        let a = OrderedRwLock::new(LOW, 0u32);
        let b = OrderedMutex::new(HIGH, ());
        {
            let mut ga = a.write();
            *ga += 1;
            let _gb = b.lock();
        }
        // Both released; any order is fine again.
        let _gb = b.lock();
        drop(_gb);
        let _ga = a.read();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = OrderedMutex::new(LOW, false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn registry_is_strictly_ordered_and_unique() {
        let mut seen_orders = std::collections::BTreeSet::new();
        let mut seen_names = std::collections::BTreeSet::new();
        for (const_name, rank) in ranks::REGISTRY {
            assert!(
                seen_orders.insert(rank.order()),
                "duplicate order {} ({})",
                rank.order(),
                const_name
            );
            assert!(
                seen_names.insert(rank.name()),
                "duplicate lock name {}",
                rank.name()
            );
        }
        assert!(!ranks::REGISTRY.is_empty());
    }
}
