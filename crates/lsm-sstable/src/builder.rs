//! Writing tables: the flush and compaction output path.

use lsm_filters::{build_point_filter, PointFilterKind};
use lsm_storage::{Backend, FileId};
use lsm_types::encoding::{put_len_prefixed, put_varint, Decoder};
use lsm_types::{EntryKind, Error, InternalEntry, InternalKey, KeyRange, Result, SeqNo, UserKey};

use crate::block::BlockBuilder;
use crate::meta::{encode_footer, TableMeta};
use crate::BLOCK_SIZE;

/// Knobs for table construction.
#[derive(Clone, Debug)]
pub struct TableBuilderOptions {
    /// Target data-block size in bytes (a block closes once it reaches
    /// this); defaults to one page.
    pub block_size: usize,
    /// Which point filter to embed.
    pub filter_kind: PointFilterKind,
    /// Filter budget in bits per key.
    pub bits_per_key: f64,
    /// Data blocks per index/filter partition (RocksDB's partitioned
    /// index: the top-level index fences over partitions, each partition
    /// fences over this many blocks). With 4 KiB blocks the default keeps a
    /// partition at ~256 KiB of data — small enough to cache, large enough
    /// that the top-level index stays tiny.
    pub index_partition_blocks: usize,
}

impl Default for TableBuilderOptions {
    fn default() -> Self {
        TableBuilderOptions {
            block_size: BLOCK_SIZE,
            filter_kind: PointFilterKind::Bloom,
            bits_per_key: 10.0,
            index_partition_blocks: 64,
        }
    }
}

/// One fence pointer: the first internal key of a data block plus its
/// location.
#[derive(Clone, Debug)]
pub(crate) struct Fence {
    pub first_key: InternalKey,
    pub offset: u64,
    pub len: u64,
}

/// Serializes the index block from fences.
pub(crate) fn encode_index(fences: &[Fence]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(fences.len() * 32);
    put_varint(&mut buf, fences.len() as u64);
    for f in fences {
        put_varint(&mut buf, f.offset);
        put_varint(&mut buf, f.len);
        put_len_prefixed(&mut buf, f.first_key.user_key.as_bytes());
        put_varint(&mut buf, f.first_key.seqno);
        buf.push(f.first_key.kind as u8);
    }
    buf
}

/// Parses the index block back into fences.
pub(crate) fn decode_index(data: &[u8]) -> Result<Vec<Fence>> {
    let mut dec = Decoder::new(data);
    let n = dec.varint()? as usize;
    let mut fences = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let offset = dec.varint()?;
        let len = dec.varint()?;
        let user_key = UserKey::copy_from(dec.len_prefixed()?);
        let seqno = dec.varint()?;
        let kind = EntryKind::from_u8(dec.u8()?)?;
        fences.push(Fence {
            first_key: InternalKey {
                user_key,
                seqno,
                kind,
            },
            offset,
            len,
        });
    }
    Ok(fences)
}

/// Builds one immutable table from entries supplied in ascending
/// internal-key order.
pub struct TableBuilder {
    opts: TableBuilderOptions,
    file: Vec<u8>,
    block: BlockBuilder,
    fences: Vec<Fence>,
    pending_first: Option<InternalKey>,
    last_key: Option<InternalKey>,
    // statistics
    entry_count: u64,
    tombstone_count: u64,
    range_tombstones: Vec<(UserKey, UserKey, SeqNo)>,
    min_key: Option<UserKey>,
    max_key: Option<UserKey>,
    min_seqno: SeqNo,
    max_seqno: SeqNo,
    min_ts: u64,
    max_ts: u64,
    filter_keys: Vec<Vec<u8>>,
    /// `filter_marks[b]` = number of filter keys accumulated once block `b`
    /// was sealed, so `finish` can slice `filter_keys` per partition. A key
    /// whose versions span blocks is attributed to the block where it first
    /// appeared, matching the `(key, SeqNo::MAX)` routing readers use.
    filter_marks: Vec<usize>,
}

impl TableBuilder {
    /// Creates a builder with the given options.
    pub fn new(opts: TableBuilderOptions) -> Self {
        TableBuilder {
            opts,
            file: Vec::with_capacity(64 * 1024),
            block: BlockBuilder::new(),
            fences: Vec::new(),
            pending_first: None,
            last_key: None,
            entry_count: 0,
            tombstone_count: 0,
            range_tombstones: Vec::new(),
            min_key: None,
            max_key: None,
            min_seqno: SeqNo::MAX,
            max_seqno: 0,
            min_ts: u64::MAX,
            max_ts: 0,
            filter_keys: Vec::new(),
            filter_marks: Vec::new(),
        }
    }

    /// Appends one entry. Entries must arrive in strictly ascending
    /// internal-key order.
    pub fn add(&mut self, entry: &InternalEntry) -> Result<()> {
        if let Some(last) = &self.last_key {
            if *last >= entry.key {
                return Err(Error::InvalidArgument(format!(
                    "entries out of order: {:?} then {:?}",
                    last, entry.key
                )));
            }
        }
        self.last_key = Some(entry.key.clone());

        if self.pending_first.is_none() {
            self.pending_first = Some(entry.key.clone());
        }
        self.block.add(entry);
        self.entry_count += 1;
        match entry.kind() {
            EntryKind::Delete | EntryKind::SingleDelete => self.tombstone_count += 1,
            EntryKind::RangeDelete => {
                let end = entry
                    .range_delete_end()
                    .ok_or_else(|| Error::Corruption("range tombstone without end key".into()))?;
                self.range_tombstones
                    .push((entry.user_key().clone(), end, entry.seqno()));
            }
            _ => {}
        }
        if self.min_key.is_none() {
            self.min_key = Some(entry.user_key().clone());
        }
        self.max_key = Some(entry.user_key().clone());
        self.min_seqno = self.min_seqno.min(entry.seqno());
        self.max_seqno = self.max_seqno.max(entry.seqno());
        self.min_ts = self.min_ts.min(entry.ts);
        self.max_ts = self.max_ts.max(entry.ts);
        // Consecutive versions of one user key need a single filter entry.
        if self
            .filter_keys
            .last()
            .is_none_or(|k| k.as_slice() != entry.user_key().as_bytes())
        {
            self.filter_keys.push(entry.user_key().as_bytes().to_vec());
        }

        if self.block.payload_len() >= self.opts.block_size {
            self.seal_block();
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Bytes of data blocks written so far (a proxy for output file size).
    pub fn data_bytes(&self) -> u64 {
        self.file.len() as u64 + self.block.payload_len() as u64
    }

    /// Whether nothing was added.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    fn seal_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        // `pending_first` is set by the first `add` into the block, so a
        // non-empty block always carries one; an absent key would produce a
        // fence that cannot route reads, so skip sealing rather than panic.
        let Some(first_key) = self.pending_first.take() else {
            return;
        };
        let offset = self.file.len() as u64;
        let block = self.block.finish();
        self.fences.push(Fence {
            first_key,
            offset,
            len: block.len() as u64,
        });
        self.filter_marks.push(self.filter_keys.len());
        self.file.extend_from_slice(&block);
    }

    /// Seals the table and persists it to `backend`. Returns the file id
    /// and the decoded metadata. Fails on an empty table.
    pub fn finish(mut self, backend: &dyn Backend) -> Result<(FileId, TableMeta)> {
        let (Some(min_key), Some(max_key)) = (self.min_key.take(), self.max_key.take()) else {
            return Err(Error::InvalidArgument("cannot write an empty table".into()));
        };
        self.seal_block();
        let data_bytes = self.file.len() as u64;

        // Partition the fence index: chunks of `index_partition_blocks`
        // fences become their own index blocks, and the top-level index
        // fences over the partitions.
        let part_blocks = self.opts.index_partition_blocks.max(1);
        let mut top_fences: Vec<Fence> = Vec::new();
        for chunk in self.fences.chunks(part_blocks) {
            let encoded = encode_index(chunk);
            top_fences.push(Fence {
                first_key: chunk[0].first_key.clone(),
                offset: self.file.len() as u64,
                len: encoded.len() as u64,
            });
            self.file.extend_from_slice(&encoded);
        }
        let index = encode_index(&top_fences);
        let index_offset = self.file.len() as u64;
        self.file.extend_from_slice(&index);

        // Filter partitions align 1:1 with index partitions: partition `j`
        // holds the filter keys first seen in its blocks.
        let filter_offset = self.file.len() as u64;
        let mut filter_partitions: Vec<(u64, u64)> = Vec::with_capacity(top_fences.len());
        let mut filter_len = 0u64;
        for (j, chunk) in self.fences.chunks(part_blocks).enumerate() {
            let first_block = j * part_blocks;
            let last_block = first_block + chunk.len() - 1;
            let key_start = if first_block == 0 {
                0
            } else {
                self.filter_marks[first_block - 1]
            };
            let key_end = self.filter_marks[last_block];
            let key_refs: Vec<&[u8]> = self.filter_keys[key_start..key_end]
                .iter()
                .map(|k| k.as_slice())
                .collect();
            let part_bytes =
                build_point_filter(self.opts.filter_kind, &key_refs, self.opts.bits_per_key)
                    .map(|f| f.to_bytes())
                    .unwrap_or_default();
            filter_partitions.push((self.file.len() as u64, part_bytes.len() as u64));
            filter_len += part_bytes.len() as u64;
            self.file.extend_from_slice(&part_bytes);
        }

        let meta = TableMeta {
            entry_count: self.entry_count,
            tombstone_count: self.tombstone_count,
            range_tombstone_count: self.range_tombstones.len() as u64,
            key_range: KeyRange {
                min: min_key,
                max: max_key,
            },
            min_seqno: self.min_seqno,
            max_seqno: self.max_seqno,
            min_ts: self.min_ts,
            max_ts: self.max_ts,
            data_bytes,
            index_offset,
            index_len: index.len() as u64,
            filter_offset,
            filter_len,
            filter_kind: self.opts.filter_kind.as_u8(),
            range_tombstones: self.range_tombstones,
            data_blocks: self.fences.len() as u64,
            filter_partitions,
        };
        let meta_bytes = meta.encode();
        let meta_offset = self.file.len() as u64;
        self.file.extend_from_slice(&meta_bytes);
        self.file
            .extend_from_slice(&encode_footer(meta_offset, meta_bytes.len() as u32));

        let file = backend.write_blob(&self.file)?;
        Ok((file, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::MemBackend;

    fn entry(i: u64) -> InternalEntry {
        InternalEntry::put(format!("key{i:06}").into_bytes(), vec![b'v'; 20], i + 1, i)
    }

    #[test]
    fn builds_multi_block_table() {
        let backend = MemBackend::new();
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        for i in 0..1000 {
            b.add(&entry(i)).unwrap();
        }
        let (file, meta) = b.finish(&backend).unwrap();
        assert_eq!(meta.entry_count, 1000);
        assert_eq!(meta.key_range.min.as_bytes(), b"key000000");
        assert_eq!(meta.key_range.max.as_bytes(), b"key000999");
        assert_eq!(meta.min_seqno, 1);
        assert_eq!(meta.max_seqno, 1000);
        assert!(meta.data_bytes > BLOCK_SIZE as u64, "should span blocks");
        assert!(backend.len(file).unwrap() > meta.data_bytes);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        b.add(&entry(5)).unwrap();
        assert!(b.add(&entry(3)).is_err());
        // equal internal keys also rejected
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        b.add(&entry(5)).unwrap();
        assert!(b.add(&entry(5)).is_err());
    }

    #[test]
    fn rejects_empty_table() {
        let backend = MemBackend::new();
        let b = TableBuilder::new(TableBuilderOptions::default());
        assert!(b.finish(&backend).is_err());
    }

    #[test]
    fn counts_tombstones_and_collects_range_deletes() {
        let backend = MemBackend::new();
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        b.add(&InternalEntry::put(b"a", b"x".to_vec(), 1, 0))
            .unwrap();
        b.add(&InternalEntry::delete(b"b", 2, 0)).unwrap();
        b.add(&InternalEntry::range_delete(b"c", b"f", 3, 0))
            .unwrap();
        b.add(&InternalEntry::single_delete(b"g", 4, 0)).unwrap();
        let (_, meta) = b.finish(&backend).unwrap();
        assert_eq!(meta.tombstone_count, 2);
        assert_eq!(meta.range_tombstone_count, 1);
        assert_eq!(meta.range_tombstones.len(), 1);
        assert_eq!(meta.range_tombstones[0].0.as_bytes(), b"c");
        assert_eq!(meta.range_tombstones[0].1.as_bytes(), b"f");
        assert!((meta.tombstone_density() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn index_roundtrip() {
        let fences = vec![
            Fence {
                first_key: InternalKey::new(b"a", 5, EntryKind::Put),
                offset: 0,
                len: 100,
            },
            Fence {
                first_key: InternalKey::new(b"m", 9, EntryKind::Delete),
                offset: 100,
                len: 222,
            },
        ];
        let encoded = encode_index(&fences);
        let back = decode_index(&encoded).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].first_key, fences[0].first_key);
        assert_eq!(back[1].offset, 100);
        assert_eq!(back[1].len, 222);
    }
}
