//! Reading tables: the point-lookup and scan path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use lsm_filters::{point_filter_from_bytes, PointFilter, PointFilterKind};
use lsm_obs::ReadProbe;
use lsm_storage::{Backend, BlockCache, BlockKey, FileId};
use lsm_types::{InternalEntry, InternalKey, Result, SeqNo};

use crate::builder::{decode_index, Fence};
use crate::iter::EntryIter;
use crate::meta::{decode_footer, TableMeta, FOOTER_LEN};

/// Per-table read statistics.
#[derive(Default, Debug)]
struct ReadStats {
    /// Point probes answered negatively by the filter (I/O saved).
    filter_negatives: AtomicU64,
    /// Point probes that went to a data block.
    block_probes: AtomicU64,
}

/// An open, immutable sorted-run file.
///
/// Opening a table reads its footer, metadata, fence pointers, and filter
/// into memory — the standard LSM arrangement where the per-run auxiliary
/// structures are memory-resident and a point lookup costs at most one data
/// block read (tutorial §2.1.3).
pub struct Table {
    backend: Arc<dyn Backend>,
    cache: Option<Arc<BlockCache>>,
    file: FileId,
    meta: TableMeta,
    fences: Vec<Fence>,
    filter: Option<Box<dyn PointFilter>>,
    stats: ReadStats,
    /// When set, the backing file is deleted (and its cache blocks dropped)
    /// once the last reference to this table goes away. Compaction marks
    /// consumed inputs obsolete; in-flight iterators and snapshots keep the
    /// file alive until they finish.
    obsolete: AtomicBool,
}

impl Table {
    /// Opens the table stored in `file`, loading its auxiliary structures.
    pub fn open(
        backend: Arc<dyn Backend>,
        file: FileId,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Arc<Table>> {
        let len = backend.len(file)?;
        let footer = backend.read(file, len - FOOTER_LEN as u64, FOOTER_LEN)?;
        let (meta_offset, meta_len) = decode_footer(&footer)?;
        let meta_bytes = backend.read(file, meta_offset, meta_len as usize)?;
        let meta = TableMeta::decode(&meta_bytes)?;

        let index_bytes = backend.read(file, meta.index_offset, meta.index_len as usize)?;
        let fences = decode_index(&index_bytes)?;

        let filter = if meta.filter_len > 0 {
            let filter_bytes = backend.read(file, meta.filter_offset, meta.filter_len as usize)?;
            point_filter_from_bytes(PointFilterKind::from_u8(meta.filter_kind)?, &filter_bytes)?
        } else {
            None
        };

        Ok(Arc::new(Table {
            backend,
            cache,
            file,
            meta,
            fences,
            filter,
            stats: ReadStats::default(),
            obsolete: AtomicBool::new(false),
        }))
    }

    /// Marks the table's file for deletion when the last reference drops.
    pub fn mark_obsolete(&self) {
        self.obsolete.store(true, Ordering::Release);
    }

    /// The table's metadata (counts, key range, ages).
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// The backing file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.fences.len()
    }

    /// Memory held by this table's filter, in bits.
    pub fn filter_memory_bits(&self) -> usize {
        self.filter.as_ref().map_or(0, |f| f.memory_bits())
    }

    /// How many point probes the filter answered negatively (I/O saved).
    pub fn filter_negatives(&self) -> u64 {
        self.stats.filter_negatives.load(Ordering::Relaxed)
    }

    /// How many point probes read a data block.
    pub fn block_probes(&self) -> u64 {
        self.stats.block_probes.load(Ordering::Relaxed)
    }

    /// Reads data block `idx`, through the cache when one is configured.
    fn read_block(&self, idx: usize) -> Result<Bytes> {
        self.read_block_probed(idx, None)
    }

    /// [`Self::read_block`] attributing the fetch to `probe` when one is
    /// riding along (sampled foreground lookups).
    fn read_block_probed(&self, idx: usize, mut probe: Option<&mut ReadProbe>) -> Result<Bytes> {
        let fence = &self.fences[idx];
        if let Some(p) = probe.as_deref_mut() {
            p.blocks_fetched += 1;
        }
        if let Some(cache) = &self.cache {
            let key = BlockKey {
                file: self.file,
                offset: fence.offset,
            };
            if let Some(block) = cache.get(&key) {
                if let Some(p) = probe.as_deref_mut() {
                    p.cache_hits += 1;
                }
                return Ok(block);
            }
            if let Some(p) = probe.as_deref_mut() {
                p.cache_misses += 1;
            }
            let block = self
                .backend
                .read(self.file, fence.offset, fence.len as usize)?;
            cache.insert(key, block.clone());
            return Ok(block);
        }
        if let Some(p) = probe {
            p.cache_misses += 1;
        }
        self.backend
            .read(self.file, fence.offset, fence.len as usize)
    }

    /// Loads every data block into the cache (Leaper-style prefetch after
    /// compaction). No-op without a cache.
    pub fn warm_cache(&self) -> Result<()> {
        if let Some(cache) = &self.cache {
            for fence in &self.fences {
                let key = BlockKey {
                    file: self.file,
                    offset: fence.offset,
                };
                if cache.get(&key).is_none() {
                    let block = self
                        .backend
                        .read(self.file, fence.offset, fence.len as usize)?;
                    cache.warm(key, block);
                }
            }
        }
        Ok(())
    }

    /// Index of the data block that could contain `probe` (the last block
    /// whose first key is `<= probe`).
    fn block_for(&self, probe: &InternalKey) -> usize {
        let idx = self.fences.partition_point(|f| f.first_key <= *probe);
        idx.saturating_sub(1)
    }

    /// The newest version of `key` visible at `snapshot`, if this table has
    /// one. Tombstones are returned, not interpreted.
    pub fn get(&self, key: &[u8], snapshot: SeqNo) -> Result<Option<InternalEntry>> {
        self.get_probed(key, snapshot, None)
    }

    /// [`Self::get`] with a [`ReadProbe`] riding along: filter consults,
    /// block fetches, and cache hit/miss attribution accumulate into
    /// `probe` so sampled foreground lookups can explain where they spent
    /// their time.
    pub fn get_probed(
        &self,
        key: &[u8],
        snapshot: SeqNo,
        mut read_probe: Option<&mut ReadProbe>,
    ) -> Result<Option<InternalEntry>> {
        if !self.meta.key_range.contains(key) {
            return Ok(None);
        }
        if let Some(filter) = &self.filter {
            if let Some(p) = read_probe.as_deref_mut() {
                p.filters_consulted += 1;
            }
            if !filter.may_contain(key) {
                self.stats.filter_negatives.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
        }
        self.stats.block_probes.fetch_add(1, Ordering::Relaxed);
        let probe = InternalKey::lookup(key, snapshot);
        let mut idx = self.block_for(&probe);
        // The candidate is the first entry >= probe; it may sit at the head
        // of the next block when the probe falls past the chosen block's
        // last entry.
        loop {
            let block = self.read_block_probed(idx, read_probe.as_deref_mut())?;
            let mut it = crate::block::BlockIter::new(block)?;
            it.seek(&probe)?;
            match it.next().transpose()? {
                Some(entry) => {
                    return Ok((entry.user_key().as_bytes() == key).then_some(entry));
                }
                None if idx + 1 < self.fences.len() => {
                    // Only worth following when the next block can still
                    // hold this user key.
                    if self.fences[idx + 1].first_key.user_key.as_bytes() != key {
                        return Ok(None);
                    }
                    idx += 1;
                }
                None => return Ok(None),
            }
        }
    }

    /// An owning iterator over the whole table.
    pub fn scan(self: &Arc<Self>) -> TableIter {
        TableIter {
            table: Arc::clone(self),
            next_block: 0,
            current: None,
            start: None,
        }
    }

    /// An owning iterator positioned at the first entry with internal key
    /// `>= probe`.
    pub fn scan_from(self: &Arc<Self>, probe: InternalKey) -> TableIter {
        let block = self.block_for(&probe);
        TableIter {
            table: Arc::clone(self),
            next_block: block,
            current: None,
            start: Some(probe),
        }
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        if self.obsolete.load(Ordering::Acquire) {
            if let Some(cache) = &self.cache {
                cache.invalidate_file(self.file);
            }
            let _ = self.backend.delete(self.file);
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("file", &self.file)
            .field("entries", &self.meta.entry_count)
            .field("range", &self.meta.key_range)
            .finish()
    }
}

/// An owning forward iterator over one table.
pub struct TableIter {
    table: Arc<Table>,
    next_block: usize,
    current: Option<crate::block::BlockIter>,
    /// Seek target applied to the first opened block.
    start: Option<InternalKey>,
}

impl EntryIter for TableIter {
    fn next_entry(&mut self) -> Result<Option<InternalEntry>> {
        loop {
            if let Some(block) = &mut self.current {
                if let Some(entry) = block.next().transpose()? {
                    return Ok(Some(entry));
                }
                self.current = None;
            }
            if self.next_block >= self.table.fences.len() {
                return Ok(None);
            }
            let bytes = self.table.read_block(self.next_block)?;
            self.next_block += 1;
            let mut block = crate::block::BlockIter::new(bytes)?;
            if let Some(probe) = self.start.take() {
                block.seek(&probe)?;
            }
            self.current = Some(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TableBuilder, TableBuilderOptions};
    use lsm_storage::MemBackend;

    fn build_table(n: u64, cache: Option<Arc<BlockCache>>) -> (Arc<MemBackend>, Arc<Table>) {
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        for i in 0..n {
            b.add(&InternalEntry::put(
                format!("key{i:06}").into_bytes(),
                format!("value-{i}").into_bytes(),
                i + 1,
                i,
            ))
            .unwrap();
        }
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let table = Table::open(backend.clone() as Arc<dyn Backend>, file, cache).unwrap();
        (backend, table)
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let (_, t) = build_table(2000, None);
        for i in [0u64, 777, 1999] {
            let got = t.get(format!("key{i:06}").as_bytes(), SeqNo::MAX).unwrap();
            assert_eq!(got.unwrap().value, format!("value-{i}").as_bytes());
        }
        assert!(t.get(b"key999999", SeqNo::MAX).unwrap().is_none());
        assert!(t.get(b"absent", SeqNo::MAX).unwrap().is_none());
    }

    #[test]
    fn lookup_costs_one_block_read() {
        let (backend, t) = build_table(2000, None);
        let before = backend.stats().snapshot();
        t.get(b"key000777", SeqNo::MAX).unwrap();
        let delta = backend.stats().snapshot().delta(&before);
        assert_eq!(delta.read_ops, 1, "one block read per lookup");
        assert!(delta.read_pages <= 2);
    }

    #[test]
    fn filter_skips_absent_keys_without_io() {
        let (backend, t) = build_table(2000, None);
        let before = backend.stats().snapshot();
        let mut skipped = 0;
        for i in 0..100 {
            // absent keys lexicographically inside the table's key range
            if t.get(format!("key{:06}x", i * 17).as_bytes(), SeqNo::MAX)
                .unwrap()
                .is_none()
            {
                skipped += 1;
            }
        }
        assert_eq!(skipped, 100);
        let delta = backend.stats().snapshot().delta(&before);
        // Bloom at 10 bits/key: ~1% FP, so almost all probes are free.
        assert!(
            delta.read_ops < 10,
            "filter should skip most reads: {delta:?}"
        );
        assert!(t.filter_negatives() > 90);
    }

    #[test]
    fn block_cache_eliminates_repeat_reads() {
        let cache = Arc::new(BlockCache::new(1 << 20));
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        for i in 0..2000u64 {
            b.add(&InternalEntry::put(
                format!("key{i:06}").into_bytes(),
                vec![b'v'; 16],
                i + 1,
                i,
            ))
            .unwrap();
        }
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let t = Table::open(
            backend.clone() as Arc<dyn Backend>,
            file,
            Some(cache.clone()),
        )
        .unwrap();

        t.get(b"key000500", SeqNo::MAX).unwrap();
        let before = backend.stats().snapshot();
        for _ in 0..50 {
            t.get(b"key000500", SeqNo::MAX).unwrap();
        }
        let delta = backend.stats().snapshot().delta(&before);
        assert_eq!(delta.read_ops, 0, "hot block must come from cache");
        assert!(cache.stats().hits >= 50);
    }

    #[test]
    fn probed_lookup_attributes_filters_blocks_and_cache() {
        let cache = Arc::new(BlockCache::new(1 << 20));
        let (_, t) = build_table(2000, Some(cache));
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(probe.filters_consulted, 1);
        assert_eq!(probe.blocks_fetched, 1);
        assert_eq!((probe.cache_hits, probe.cache_misses), (0, 1));

        // Repeat lookup: same block now comes from the cache.
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!((probe.cache_hits, probe.cache_misses), (1, 0));

        // Filter-rejected probe consults the filter but fetches nothing.
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777xx", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(probe.filters_consulted, 1);
        assert_eq!(probe.blocks_fetched, 0);
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let (_, t) = build_table(3000, None);
        let mut it = t.scan();
        let mut count = 0u64;
        let mut last: Option<InternalKey> = None;
        while let Some(e) = it.next_entry().unwrap() {
            if let Some(l) = &last {
                assert!(*l < e.key);
            }
            last = Some(e.key.clone());
            count += 1;
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn scan_from_seeks_across_blocks() {
        let (_, t) = build_table(3000, None);
        let probe = InternalKey::lookup(b"key002500", SeqNo::MAX);
        let mut it = t.scan_from(probe);
        let first = it.next_entry().unwrap().unwrap();
        assert_eq!(first.user_key().as_bytes(), b"key002500");
        let mut count = 1;
        while it.next_entry().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn snapshot_reads_see_old_versions() {
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        // key "k": seqnos 30 (newest) then 10, internal order newest-first
        b.add(&InternalEntry::put(b"k", b"new".to_vec(), 30, 0))
            .unwrap();
        b.add(&InternalEntry::put(b"k", b"old".to_vec(), 10, 0))
            .unwrap();
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let t = Table::open(backend as Arc<dyn Backend>, file, None).unwrap();
        assert_eq!(&t.get(b"k", SeqNo::MAX).unwrap().unwrap().value[..], b"new");
        assert_eq!(&t.get(b"k", 20).unwrap().unwrap().value[..], b"old");
        assert!(t.get(b"k", 5).unwrap().is_none());
    }

    #[test]
    fn warm_cache_loads_all_blocks() {
        let cache = Arc::new(BlockCache::new(1 << 22));
        let (backend, t) = {
            let backend = Arc::new(MemBackend::new());
            let mut b = TableBuilder::new(TableBuilderOptions::default());
            for i in 0..2000u64 {
                b.add(&InternalEntry::put(
                    format!("key{i:06}").into_bytes(),
                    vec![b'v'; 16],
                    i + 1,
                    i,
                ))
                .unwrap();
            }
            let (file, _) = b.finish(backend.as_ref()).unwrap();
            let t = Table::open(
                backend.clone() as Arc<dyn Backend>,
                file,
                Some(cache.clone()),
            )
            .unwrap();
            (backend, t)
        };
        t.warm_cache().unwrap();
        assert_eq!(cache.block_count(), t.block_count());
        let before = backend.stats().snapshot();
        t.get(b"key001234", SeqNo::MAX).unwrap();
        assert_eq!(
            backend.stats().snapshot().delta(&before).read_ops,
            0,
            "post-warm lookups are free"
        );
    }
}
