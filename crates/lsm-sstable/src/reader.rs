//! Reading tables: the point-lookup and scan path.
//!
//! Tables carry a two-level index (RocksDB's partitioned index): a tiny
//! top-level fence over *index partitions*, each of which fences over a
//! chunk of data blocks. Filters are partitioned the same way. How the
//! auxiliary blocks are held depends on how the table was opened:
//!
//! * **No cache** — partitions are decoded eagerly at open and stay
//!   memory-resident (the classic arrangement; a point lookup costs at most
//!   one data-block read).
//! * **Cache, pinned** ([`Table::open_pinned`]) — partitions are read once
//!   at open, charged to the block cache as *pinned* entries
//!   (`cache_index_and_filter_blocks` + `pin_l0_filter_and_index_blocks`
//!   semantics), and kept decoded in the table, so hot-table lookups pay
//!   zero auxiliary fetches while the cache accounting still reflects their
//!   memory.
//! * **Cache, unpinned** — partitions flow through the cache on demand like
//!   data blocks; cold tables cost an extra cached fetch per lookup but
//!   their routing state is evictable.
//!
//! Blocks come out of the cache as refcount-shared [`Bytes`] (zero-copy),
//! and cache hits skip the CRC pass they already paid at fill time unless
//! [`TableReadOpts::verify_checksums`] asks for end-to-end verification.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use lsm_filters::{point_filter_from_bytes, PointFilter, PointFilterKind};
use lsm_obs::ReadProbe;
use lsm_storage::{Backend, BlockCache, BlockKey, BlockKind, FileId};
use lsm_types::{Error, InternalEntry, InternalKey, Result, SeqNo};

use crate::builder::{decode_index, Fence};
use crate::iter::EntryIter;
use crate::meta::{decode_footer, TableMeta, FOOTER_LEN};

/// Per-read knobs threaded down from the engine's `ReadOptions`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableReadOpts {
    /// Insert data blocks fetched from the backend into the cache.
    pub fill_cache: bool,
    /// Pin index/filter partitions this read pulls into the cache (they
    /// become evictable only via file invalidation).
    pub pin_index_filter: bool,
    /// Re-verify block checksums even on cache hits.
    pub verify_checksums: bool,
}

impl Default for TableReadOpts {
    fn default() -> Self {
        TableReadOpts {
            fill_cache: true,
            pin_index_filter: false,
            verify_checksums: false,
        }
    }
}

/// Per-table read statistics.
#[derive(Default, Debug)]
struct ReadStats {
    /// Point probes answered negatively by the filter (I/O saved).
    filter_negatives: AtomicU64,
    /// Point probes that went to a data block.
    block_probes: AtomicU64,
}

/// How the table's index/filter partitions are held.
enum AuxData {
    /// Decoded and resident in the table: no cache, or pinned into the
    /// cache at open (resident decoded form, raw bytes charged to cache).
    Resident {
        fences: Vec<Arc<Vec<Fence>>>,
        filters: Vec<Option<Box<dyn PointFilter>>>,
    },
    /// Fetched through the block cache on demand and decoded per access.
    Cached,
}

/// An open, immutable sorted-run file.
pub struct Table {
    backend: Arc<dyn Backend>,
    cache: Option<Arc<BlockCache>>,
    file: FileId,
    meta: TableMeta,
    /// Top-level fence over index partitions (always memory-resident; one
    /// entry per `index_partition_blocks` data blocks).
    partitions: Vec<Fence>,
    aux: AuxData,
    filter_kind: Option<PointFilterKind>,
    stats: ReadStats,
    /// When set, the backing file is deleted (and its cache blocks dropped)
    /// once the last reference to this table goes away. Compaction marks
    /// consumed inputs obsolete; in-flight iterators and snapshots keep the
    /// file alive until they finish.
    obsolete: AtomicBool,
}

impl Table {
    /// Opens the table stored in `file`. Without a cache the auxiliary
    /// structures are loaded into table-resident memory; with one, they are
    /// served through the cache on demand (unpinned).
    pub fn open(
        backend: Arc<dyn Backend>,
        file: FileId,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Arc<Table>> {
        Self::open_with(backend, file, cache, false)
    }

    /// [`Self::open`] for hot tables: when `pin_aux` is set (and a cache is
    /// present), every index/filter partition is read now, charged to the
    /// cache as a pinned entry, and kept decoded in the table so lookups
    /// never re-fetch routing state.
    pub fn open_pinned(
        backend: Arc<dyn Backend>,
        file: FileId,
        cache: Option<Arc<BlockCache>>,
        pin_aux: bool,
    ) -> Result<Arc<Table>> {
        Self::open_with(backend, file, cache, pin_aux)
    }

    fn open_with(
        backend: Arc<dyn Backend>,
        file: FileId,
        cache: Option<Arc<BlockCache>>,
        pin_aux: bool,
    ) -> Result<Arc<Table>> {
        let len = backend.len(file)?;
        let footer = backend.read(file, len - FOOTER_LEN as u64, FOOTER_LEN)?;
        let (meta_offset, meta_len) = decode_footer(&footer)?;
        let meta_bytes = backend.read(file, meta_offset, meta_len as usize)?;
        let meta = TableMeta::decode(&meta_bytes)?;

        let top_bytes = backend.read(file, meta.index_offset, meta.index_len as usize)?;
        let partitions = decode_index(&top_bytes)?;
        if partitions.len() != meta.filter_partitions.len() {
            return Err(Error::Corruption(
                "index/filter partition counts disagree".into(),
            ));
        }

        let filter_kind = if meta.filter_len > 0 {
            Some(PointFilterKind::from_u8(meta.filter_kind)?)
        } else {
            None
        };

        let resident = cache.is_none() || pin_aux;
        let aux = if resident {
            let mut fences = Vec::with_capacity(partitions.len());
            let mut filters = Vec::with_capacity(partitions.len());
            for (pi, part) in partitions.iter().enumerate() {
                let bytes = backend.read(file, part.offset, part.len as usize)?;
                if let (Some(cache), true) = (&cache, pin_aux) {
                    let key = BlockKey {
                        file,
                        offset: part.offset,
                    };
                    cache.insert_kind(key, bytes.clone(), BlockKind::Index, true);
                }
                fences.push(Arc::new(decode_index(&bytes)?));

                let (foff, flen) = meta.filter_partitions[pi];
                let filter = if flen > 0 {
                    let fbytes = backend.read(file, foff, flen as usize)?;
                    if let (Some(cache), true) = (&cache, pin_aux) {
                        let key = BlockKey { file, offset: foff };
                        cache.insert_kind(key, fbytes.clone(), BlockKind::Filter, true);
                    }
                    match filter_kind {
                        Some(kind) => point_filter_from_bytes(kind, &fbytes)?,
                        None => None,
                    }
                } else {
                    None
                };
                filters.push(filter);
            }
            AuxData::Resident { fences, filters }
        } else {
            AuxData::Cached
        };

        Ok(Arc::new(Table {
            backend,
            cache,
            file,
            meta,
            partitions,
            aux,
            filter_kind,
            stats: ReadStats::default(),
            obsolete: AtomicBool::new(false),
        }))
    }

    /// Marks the table's file for deletion when the last reference drops.
    pub fn mark_obsolete(&self) {
        self.obsolete.store(true, Ordering::Release);
    }

    /// The table's metadata (counts, key range, ages).
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// The backing file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.meta.data_blocks as usize
    }

    /// Number of auxiliary blocks (index partitions + non-empty filter
    /// partitions) that flow through the cache alongside the data blocks.
    pub fn aux_block_count(&self) -> usize {
        self.partitions.len()
            + self
                .meta
                .filter_partitions
                .iter()
                .filter(|(_, len)| *len > 0)
                .count()
    }

    /// Whether this table's index/filter partitions are table-resident
    /// (no cache, or pinned) as opposed to fetched through the cache.
    pub fn aux_resident(&self) -> bool {
        matches!(self.aux, AuxData::Resident { .. })
    }

    /// Memory held by this table's resident filters, in bits (0 when the
    /// filters live in the cache instead).
    pub fn filter_memory_bits(&self) -> usize {
        match &self.aux {
            AuxData::Resident { filters, .. } => filters
                .iter()
                .map(|f| f.as_ref().map_or(0, |f| f.memory_bits()))
                .sum(),
            AuxData::Cached => 0,
        }
    }

    /// How many point probes the filter answered negatively (I/O saved).
    pub fn filter_negatives(&self) -> u64 {
        self.stats.filter_negatives.load(Ordering::Relaxed)
    }

    /// How many point probes read a data block.
    pub fn block_probes(&self) -> u64 {
        self.stats.block_probes.load(Ordering::Relaxed)
    }

    /// Reads an auxiliary (index/filter partition) block, through the cache
    /// when one is configured.
    fn read_aux(
        &self,
        offset: u64,
        len: usize,
        kind: BlockKind,
        probe: Option<&mut ReadProbe>,
        ropts: &TableReadOpts,
    ) -> Result<Bytes> {
        if let Some(p) = probe {
            p.aux_fetches += 1;
        }
        if let Some(cache) = &self.cache {
            let key = BlockKey {
                file: self.file,
                offset,
            };
            if let Some(bytes) = cache.get_kind(&key, kind) {
                return Ok(bytes);
            }
            let bytes = self.backend.read(self.file, offset, len)?;
            cache.insert_kind(key, bytes.clone(), kind, ropts.pin_index_filter);
            return Ok(bytes);
        }
        self.backend.read(self.file, offset, len)
    }

    /// The fences of index partition `pi` (shared when resident, decoded
    /// from the cached partition block otherwise).
    fn partition_fences(
        &self,
        pi: usize,
        probe: Option<&mut ReadProbe>,
        ropts: &TableReadOpts,
    ) -> Result<Arc<Vec<Fence>>> {
        match &self.aux {
            AuxData::Resident { fences, .. } => Ok(Arc::clone(&fences[pi])),
            AuxData::Cached => {
                let part = &self.partitions[pi];
                let bytes = self.read_aux(
                    part.offset,
                    part.len as usize,
                    BlockKind::Index,
                    probe,
                    ropts,
                )?;
                Ok(Arc::new(decode_index(&bytes)?))
            }
        }
    }

    /// Consults partition `pi`'s filter; `true` means the key may be
    /// present (absent filters always pass).
    fn filter_may_contain(
        &self,
        pi: usize,
        key: &[u8],
        mut probe: Option<&mut ReadProbe>,
        ropts: &TableReadOpts,
    ) -> Result<bool> {
        match &self.aux {
            AuxData::Resident { filters, .. } => match &filters[pi] {
                Some(filter) => {
                    if let Some(p) = probe.as_deref_mut() {
                        p.filters_consulted += 1;
                    }
                    Ok(filter.may_contain(key))
                }
                None => Ok(true),
            },
            AuxData::Cached => {
                let Some(kind) = self.filter_kind else {
                    return Ok(true);
                };
                let (foff, flen) = self.meta.filter_partitions[pi];
                if flen == 0 {
                    return Ok(true);
                }
                if let Some(p) = probe.as_deref_mut() {
                    p.filters_consulted += 1;
                }
                let bytes = self.read_aux(foff, flen as usize, BlockKind::Filter, probe, ropts)?;
                match point_filter_from_bytes(kind, &bytes)? {
                    Some(filter) => Ok(filter.may_contain(key)),
                    None => Ok(true),
                }
            }
        }
    }

    /// Index of the partition that could contain `probe` (the last one
    /// whose first key is `<= probe`).
    fn partition_for(&self, probe: &InternalKey) -> usize {
        self.partitions
            .partition_point(|f| f.first_key <= *probe)
            .saturating_sub(1)
    }

    /// Reads a data block, through the cache when one is configured.
    /// Returns the block and whether it came from the cache (already
    /// CRC-verified at fill time).
    fn read_block_fence(
        &self,
        fence: &Fence,
        mut probe: Option<&mut ReadProbe>,
        ropts: &TableReadOpts,
    ) -> Result<(Bytes, bool)> {
        if let Some(p) = probe.as_deref_mut() {
            p.blocks_fetched += 1;
        }
        if let Some(cache) = &self.cache {
            let key = BlockKey {
                file: self.file,
                offset: fence.offset,
            };
            if let Some(block) = cache.get(&key) {
                if let Some(p) = probe.as_deref_mut() {
                    p.cache_hits += 1;
                }
                return Ok((block, true));
            }
            if let Some(p) = probe.as_deref_mut() {
                p.cache_misses += 1;
            }
            let block = self
                .backend
                .read(self.file, fence.offset, fence.len as usize)?;
            if ropts.fill_cache {
                cache.insert(key, block.clone());
            }
            return Ok((block, false));
        }
        if let Some(p) = probe {
            p.cache_misses += 1;
        }
        let block = self
            .backend
            .read(self.file, fence.offset, fence.len as usize)?;
        Ok((block, false))
    }

    /// Iterates a fetched block, skipping re-verification for cache hits
    /// unless the read asked for end-to-end checksums.
    fn block_iter(
        block: Bytes,
        from_cache: bool,
        ropts: &TableReadOpts,
    ) -> Result<crate::block::BlockIter> {
        if from_cache && !ropts.verify_checksums {
            crate::block::BlockIter::new_trusted(block)
        } else {
            crate::block::BlockIter::new(block)
        }
    }

    /// Loads every data block and auxiliary partition into the cache
    /// (Leaper-style prefetch after compaction). No-op without a cache.
    pub fn warm_cache(&self) -> Result<()> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        let ropts = TableReadOpts::default();
        for (pi, part) in self.partitions.iter().enumerate() {
            let ikey = BlockKey {
                file: self.file,
                offset: part.offset,
            };
            if cache.get_kind(&ikey, BlockKind::Index).is_none() {
                let bytes = self
                    .backend
                    .read(self.file, part.offset, part.len as usize)?;
                cache.insert_kind(ikey, bytes, BlockKind::Index, false);
            }
            let (foff, flen) = self.meta.filter_partitions[pi];
            if flen > 0 {
                let fkey = BlockKey {
                    file: self.file,
                    offset: foff,
                };
                if cache.get_kind(&fkey, BlockKind::Filter).is_none() {
                    let bytes = self.backend.read(self.file, foff, flen as usize)?;
                    cache.insert_kind(fkey, bytes, BlockKind::Filter, false);
                }
            }
            let fences = self.partition_fences(pi, None, &ropts)?;
            for fence in fences.iter() {
                let key = BlockKey {
                    file: self.file,
                    offset: fence.offset,
                };
                if cache.get(&key).is_none() {
                    let block = self
                        .backend
                        .read(self.file, fence.offset, fence.len as usize)?;
                    cache.warm(key, block);
                }
            }
        }
        Ok(())
    }

    /// The newest version of `key` visible at `snapshot`, if this table has
    /// one. Tombstones are returned, not interpreted.
    pub fn get(&self, key: &[u8], snapshot: SeqNo) -> Result<Option<InternalEntry>> {
        self.get_with(key, snapshot, None, &TableReadOpts::default())
    }

    /// [`Self::get`] with a [`ReadProbe`] riding along: filter consults,
    /// block fetches, and cache hit/miss attribution accumulate into
    /// `probe` so sampled foreground lookups can explain where they spent
    /// their time.
    pub fn get_probed(
        &self,
        key: &[u8],
        snapshot: SeqNo,
        read_probe: Option<&mut ReadProbe>,
    ) -> Result<Option<InternalEntry>> {
        self.get_with(key, snapshot, read_probe, &TableReadOpts::default())
    }

    /// [`Self::get_probed`] honoring per-read options.
    pub fn get_with(
        &self,
        key: &[u8],
        snapshot: SeqNo,
        mut read_probe: Option<&mut ReadProbe>,
        ropts: &TableReadOpts,
    ) -> Result<Option<InternalEntry>> {
        if !self.meta.key_range.contains(key) {
            return Ok(None);
        }
        if self.filter_kind.is_some() {
            // Filters route by `(key, MAX)` — the partition holding the
            // key's *newest* version is where its filter entry lives, even
            // when the snapshot routes the data probe to a later partition.
            let fpi = self.partition_for(&InternalKey::lookup(key, SeqNo::MAX));
            if !self.filter_may_contain(fpi, key, read_probe.as_deref_mut(), ropts)? {
                self.stats.filter_negatives.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
        }
        self.stats.block_probes.fetch_add(1, Ordering::Relaxed);
        let probe = InternalKey::lookup(key, snapshot);
        let mut pi = self.partition_for(&probe);
        let mut fences = self.partition_fences(pi, read_probe.as_deref_mut(), ropts)?;
        let mut bi = fences
            .partition_point(|f| f.first_key <= probe)
            .saturating_sub(1);
        // The candidate is the first entry >= probe; it may sit at the head
        // of the next block (possibly in the next partition) when the probe
        // falls past the chosen block's last entry.
        loop {
            let (block, from_cache) =
                self.read_block_fence(&fences[bi], read_probe.as_deref_mut(), ropts)?;
            let mut it = Self::block_iter(block, from_cache, ropts)?;
            it.seek(&probe)?;
            if let Some(entry) = it.next().transpose()? {
                return Ok((entry.user_key().as_bytes() == key).then_some(entry));
            }
            // Advance to the next block, following only while it can still
            // hold this user key.
            bi += 1;
            if bi >= fences.len() {
                pi += 1;
                if pi >= self.partitions.len() {
                    return Ok(None);
                }
                fences = self.partition_fences(pi, read_probe.as_deref_mut(), ropts)?;
                bi = 0;
                if fences.is_empty() {
                    return Ok(None);
                }
            }
            if fences[bi].first_key.user_key.as_bytes() != key {
                return Ok(None);
            }
        }
    }

    /// An owning iterator over the whole table.
    pub fn scan(self: &Arc<Self>) -> TableIter {
        self.scan_with(TableReadOpts::default())
    }

    /// [`Self::scan`] honoring per-read options.
    pub fn scan_with(self: &Arc<Self>, ropts: TableReadOpts) -> TableIter {
        TableIter {
            table: Arc::clone(self),
            pi: 0,
            bi: 0,
            fences: None,
            current: None,
            start: None,
            ropts,
        }
    }

    /// An owning iterator positioned at the first entry with internal key
    /// `>= probe`.
    pub fn scan_from(self: &Arc<Self>, probe: InternalKey) -> TableIter {
        self.scan_from_with(probe, TableReadOpts::default())
    }

    /// [`Self::scan_from`] honoring per-read options.
    pub fn scan_from_with(self: &Arc<Self>, probe: InternalKey, ropts: TableReadOpts) -> TableIter {
        let pi = self.partition_for(&probe);
        TableIter {
            table: Arc::clone(self),
            pi,
            bi: 0,
            fences: None,
            current: None,
            start: Some(probe),
            ropts,
        }
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        if self.obsolete.load(Ordering::Acquire) {
            if let Some(cache) = &self.cache {
                cache.invalidate_file(self.file);
            }
            let _ = self.backend.delete(self.file);
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("file", &self.file)
            .field("entries", &self.meta.entry_count)
            .field("range", &self.meta.key_range)
            .finish()
    }
}

/// An owning forward iterator over one table.
pub struct TableIter {
    table: Arc<Table>,
    /// Current index partition.
    pi: usize,
    /// Next block within the current partition's fences.
    bi: usize,
    /// The current partition's fences, fetched lazily.
    fences: Option<Arc<Vec<Fence>>>,
    current: Option<crate::block::BlockIter>,
    /// Seek target applied to the first opened block.
    start: Option<InternalKey>,
    ropts: TableReadOpts,
}

impl EntryIter for TableIter {
    fn next_entry(&mut self) -> Result<Option<InternalEntry>> {
        loop {
            if let Some(block) = &mut self.current {
                if let Some(entry) = block.next().transpose()? {
                    return Ok(Some(entry));
                }
                self.current = None;
            }
            if self.pi >= self.table.partitions.len() {
                return Ok(None);
            }
            let fences = match &self.fences {
                Some(f) => Arc::clone(f),
                None => {
                    let f = self.table.partition_fences(self.pi, None, &self.ropts)?;
                    if let Some(probe) = &self.start {
                        // First positioning: land on the block that could
                        // contain the seek target.
                        self.bi = f
                            .partition_point(|fence| fence.first_key <= *probe)
                            .saturating_sub(1);
                    }
                    self.fences = Some(Arc::clone(&f));
                    f
                }
            };
            if self.bi >= fences.len() {
                self.pi += 1;
                self.bi = 0;
                self.fences = None;
                continue;
            }
            let (bytes, from_cache) =
                self.table
                    .read_block_fence(&fences[self.bi], None, &self.ropts)?;
            self.bi += 1;
            let mut block = Table::block_iter(bytes, from_cache, &self.ropts)?;
            if let Some(probe) = self.start.take() {
                block.seek(&probe)?;
            }
            self.current = Some(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{TableBuilder, TableBuilderOptions};
    use lsm_storage::{CacheConfig, MemBackend};

    fn test_cache(capacity: usize) -> Arc<BlockCache> {
        Arc::new(BlockCache::with_config(CacheConfig {
            capacity_bytes: capacity,
            shard_bits: 4,
            pin_index_filter: false,
        }))
    }

    fn build_table(n: u64, cache: Option<Arc<BlockCache>>) -> (Arc<MemBackend>, Arc<Table>) {
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        for i in 0..n {
            b.add(&InternalEntry::put(
                format!("key{i:06}").into_bytes(),
                format!("value-{i}").into_bytes(),
                i + 1,
                i,
            ))
            .unwrap();
        }
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let table = Table::open(backend.clone() as Arc<dyn Backend>, file, cache).unwrap();
        (backend, table)
    }

    /// A table forced to span several index partitions (4 blocks each).
    fn build_partitioned(
        n: u64,
        cache: Option<Arc<BlockCache>>,
        pin: bool,
    ) -> (Arc<MemBackend>, Arc<Table>) {
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions {
            index_partition_blocks: 4,
            ..TableBuilderOptions::default()
        });
        for i in 0..n {
            b.add(&InternalEntry::put(
                format!("key{i:06}").into_bytes(),
                format!("value-{i}").into_bytes(),
                i + 1,
                i,
            ))
            .unwrap();
        }
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let table =
            Table::open_pinned(backend.clone() as Arc<dyn Backend>, file, cache, pin).unwrap();
        (backend, table)
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let (_, t) = build_table(2000, None);
        for i in [0u64, 777, 1999] {
            let got = t.get(format!("key{i:06}").as_bytes(), SeqNo::MAX).unwrap();
            assert_eq!(got.unwrap().value, format!("value-{i}").as_bytes());
        }
        assert!(t.get(b"key999999", SeqNo::MAX).unwrap().is_none());
        assert!(t.get(b"absent", SeqNo::MAX).unwrap().is_none());
    }

    #[test]
    fn lookup_costs_one_block_read() {
        let (backend, t) = build_table(2000, None);
        let before = backend.stats().snapshot();
        t.get(b"key000777", SeqNo::MAX).unwrap();
        let delta = backend.stats().snapshot().delta(&before);
        assert_eq!(delta.read_ops, 1, "one block read per lookup");
        assert!(delta.read_pages <= 2);
    }

    #[test]
    fn multi_partition_lookups_find_every_key() {
        // No cache: partitions resident.
        let (_, t) = build_partitioned(2000, None, false);
        assert!(t.partitions.len() > 2, "must span several partitions");
        for i in [0u64, 1, 499, 500, 777, 1998, 1999] {
            let got = t.get(format!("key{i:06}").as_bytes(), SeqNo::MAX).unwrap();
            assert_eq!(got.unwrap().value, format!("value-{i}").as_bytes());
        }
        assert!(t.get(b"key5", SeqNo::MAX).unwrap().is_none());

        // Cached (unpinned) partitions.
        let (_, t) = build_partitioned(2000, Some(test_cache(1 << 22)), false);
        assert!(!t.aux_resident());
        for i in [0u64, 499, 500, 1999] {
            let got = t.get(format!("key{i:06}").as_bytes(), SeqNo::MAX).unwrap();
            assert_eq!(got.unwrap().value, format!("value-{i}").as_bytes());
        }

        // Pinned partitions.
        let cache = test_cache(1 << 22);
        let (_, t) = build_partitioned(2000, Some(cache.clone()), true);
        assert!(t.aux_resident());
        assert!(cache.pinned_bytes() > 0, "aux charged to the cache");
        for i in [0u64, 499, 500, 1999] {
            let got = t.get(format!("key{i:06}").as_bytes(), SeqNo::MAX).unwrap();
            assert_eq!(got.unwrap().value, format!("value-{i}").as_bytes());
        }
    }

    #[test]
    fn pinned_lookup_costs_one_block_read() {
        let cache = test_cache(1 << 22);
        let (backend, t) = build_partitioned(2000, Some(cache), true);
        let before = backend.stats().snapshot();
        t.get(b"key000777", SeqNo::MAX).unwrap();
        let delta = backend.stats().snapshot().delta(&before);
        assert_eq!(
            delta.read_ops, 1,
            "pinned aux: only the data block hits the backend"
        );
    }

    #[test]
    fn cached_aux_lookup_attributes_aux_fetches() {
        let cache = test_cache(1 << 22);
        let (backend, t) = build_partitioned(2000, Some(cache), false);
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(probe.aux_fetches, 2, "one filter + one index partition");
        assert_eq!(probe.blocks_fetched, 1);
        assert_eq!(probe.read_amp(), 3);

        // Second lookup: aux comes from the cache, no backend reads at all.
        let before = backend.stats().snapshot();
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(backend.stats().snapshot().delta(&before).read_ops, 0);
        assert_eq!(probe.aux_fetches, 2);
        assert_eq!(probe.cache_hits, 1);
    }

    #[test]
    fn filter_skips_absent_keys_without_io() {
        let (backend, t) = build_table(2000, None);
        let before = backend.stats().snapshot();
        let mut skipped = 0;
        for i in 0..100 {
            // absent keys lexicographically inside the table's key range
            if t.get(format!("key{:06}x", i * 17).as_bytes(), SeqNo::MAX)
                .unwrap()
                .is_none()
            {
                skipped += 1;
            }
        }
        assert_eq!(skipped, 100);
        let delta = backend.stats().snapshot().delta(&before);
        // Bloom at 10 bits/key: ~1% FP, so almost all probes are free.
        assert!(
            delta.read_ops < 10,
            "filter should skip most reads: {delta:?}"
        );
        assert!(t.filter_negatives() > 90);
    }

    #[test]
    fn partitioned_filter_skips_absent_keys() {
        let (_, t) = build_partitioned(2000, None, false);
        let mut skipped = 0;
        for i in 0..100 {
            if t.get(format!("key{:06}x", i * 17).as_bytes(), SeqNo::MAX)
                .unwrap()
                .is_none()
            {
                skipped += 1;
            }
        }
        assert_eq!(skipped, 100);
        assert!(t.filter_negatives() > 90, "per-partition filters work");
    }

    #[test]
    fn block_cache_eliminates_repeat_reads() {
        let cache = test_cache(1 << 20);
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        for i in 0..2000u64 {
            b.add(&InternalEntry::put(
                format!("key{i:06}").into_bytes(),
                vec![b'v'; 16],
                i + 1,
                i,
            ))
            .unwrap();
        }
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let t = Table::open(
            backend.clone() as Arc<dyn Backend>,
            file,
            Some(cache.clone()),
        )
        .unwrap();

        t.get(b"key000500", SeqNo::MAX).unwrap();
        let before = backend.stats().snapshot();
        for _ in 0..50 {
            t.get(b"key000500", SeqNo::MAX).unwrap();
        }
        let delta = backend.stats().snapshot().delta(&before);
        assert_eq!(delta.read_ops, 0, "hot block must come from cache");
        assert!(cache.stats().hits >= 50);
    }

    #[test]
    fn probed_lookup_attributes_filters_blocks_and_cache() {
        let cache = test_cache(1 << 20);
        let (_, t) = build_table(2000, Some(cache));
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(probe.filters_consulted, 1);
        assert_eq!(probe.blocks_fetched, 1);
        assert_eq!((probe.cache_hits, probe.cache_misses), (0, 1));

        // Repeat lookup: same block now comes from the cache.
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!((probe.cache_hits, probe.cache_misses), (1, 0));

        // Filter-rejected probe consults the filter but fetches nothing.
        let mut probe = ReadProbe::default();
        t.get_probed(b"key000777xx", SeqNo::MAX, Some(&mut probe))
            .unwrap();
        assert_eq!(probe.filters_consulted, 1);
        assert_eq!(probe.blocks_fetched, 0);
    }

    #[test]
    fn fill_cache_false_leaves_cache_untouched() {
        let cache = test_cache(1 << 20);
        let (_, t) = build_table(2000, Some(cache.clone()));
        let ropts = TableReadOpts {
            fill_cache: false,
            ..TableReadOpts::default()
        };
        t.get_with(b"key000777", SeqNo::MAX, None, &ropts).unwrap();
        // Aux partitions are always cached (routing hot set) but the data
        // block must not be.
        assert_eq!(
            cache.block_count(),
            t.aux_block_count(),
            "no data block inserted"
        );
    }

    #[test]
    fn scan_returns_everything_in_order() {
        let (_, t) = build_table(3000, None);
        let mut it = t.scan();
        let mut count = 0u64;
        let mut last: Option<InternalKey> = None;
        while let Some(e) = it.next_entry().unwrap() {
            if let Some(l) = &last {
                assert!(*l < e.key);
            }
            last = Some(e.key.clone());
            count += 1;
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn scan_spans_partitions_in_order() {
        let (_, t) = build_partitioned(3000, Some(test_cache(1 << 22)), false);
        let mut it = t.scan();
        let mut count = 0u64;
        let mut last: Option<InternalKey> = None;
        while let Some(e) = it.next_entry().unwrap() {
            if let Some(l) = &last {
                assert!(*l < e.key);
            }
            last = Some(e.key.clone());
            count += 1;
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn scan_from_seeks_across_blocks() {
        let (_, t) = build_table(3000, None);
        let probe = InternalKey::lookup(b"key002500", SeqNo::MAX);
        let mut it = t.scan_from(probe);
        let first = it.next_entry().unwrap().unwrap();
        assert_eq!(first.user_key().as_bytes(), b"key002500");
        let mut count = 1;
        while it.next_entry().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn scan_from_seeks_across_partitions() {
        let (_, t) = build_partitioned(3000, None, false);
        let probe = InternalKey::lookup(b"key002500", SeqNo::MAX);
        let mut it = t.scan_from(probe);
        let first = it.next_entry().unwrap().unwrap();
        assert_eq!(first.user_key().as_bytes(), b"key002500");
        let mut count = 1;
        while it.next_entry().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn snapshot_reads_see_old_versions() {
        let backend = Arc::new(MemBackend::new());
        let mut b = TableBuilder::new(TableBuilderOptions::default());
        // key "k": seqnos 30 (newest) then 10, internal order newest-first
        b.add(&InternalEntry::put(b"k", b"new".to_vec(), 30, 0))
            .unwrap();
        b.add(&InternalEntry::put(b"k", b"old".to_vec(), 10, 0))
            .unwrap();
        let (file, _) = b.finish(backend.as_ref()).unwrap();
        let t = Table::open(backend as Arc<dyn Backend>, file, None).unwrap();
        assert_eq!(&t.get(b"k", SeqNo::MAX).unwrap().unwrap().value[..], b"new");
        assert_eq!(&t.get(b"k", 20).unwrap().unwrap().value[..], b"old");
        assert!(t.get(b"k", 5).unwrap().is_none());
    }

    #[test]
    fn warm_cache_loads_all_blocks() {
        let cache = test_cache(1 << 22);
        let (backend, t) = {
            let backend = Arc::new(MemBackend::new());
            let mut b = TableBuilder::new(TableBuilderOptions::default());
            for i in 0..2000u64 {
                b.add(&InternalEntry::put(
                    format!("key{i:06}").into_bytes(),
                    vec![b'v'; 16],
                    i + 1,
                    i,
                ))
                .unwrap();
            }
            let (file, _) = b.finish(backend.as_ref()).unwrap();
            let t = Table::open(
                backend.clone() as Arc<dyn Backend>,
                file,
                Some(cache.clone()),
            )
            .unwrap();
            (backend, t)
        };
        t.warm_cache().unwrap();
        assert_eq!(
            cache.block_count(),
            t.block_count() + t.aux_block_count(),
            "data blocks plus index/filter partitions"
        );
        let before = backend.stats().snapshot();
        t.get(b"key001234", SeqNo::MAX).unwrap();
        assert_eq!(
            backend.stats().snapshot().delta(&before).read_ops,
            0,
            "post-warm lookups are free"
        );
    }

    #[test]
    fn cache_hit_returns_aliasing_bytes() {
        let cache = test_cache(1 << 22);
        let (_, t) = build_partitioned(2000, Some(cache), false);
        let ropts = TableReadOpts::default();
        let fences = t.partition_fences(0, None, &ropts).unwrap();
        let (first, from_cache) = t.read_block_fence(&fences[0], None, &ropts).unwrap();
        assert!(!from_cache, "first read goes to the backend");
        let (a, hit_a) = t.read_block_fence(&fences[0], None, &ropts).unwrap();
        let (b, hit_b) = t.read_block_fence(&fences[0], None, &ropts).unwrap();
        assert!(hit_a && hit_b);
        assert_eq!(
            a.as_ptr(),
            b.as_ptr(),
            "cache hits must alias one allocation — any copy breaks zero-copy"
        );
        assert_eq!(a, first, "hit serves the same bytes the fill stored");
    }

    #[test]
    fn invalidate_file_keeps_concurrent_readers_valid() {
        let cache = test_cache(1 << 22);
        let (_, t) = build_partitioned(2000, Some(cache.clone()), true);
        assert!(cache.pinned_bytes() > 0, "pinned aux charged at open");
        let ropts = TableReadOpts::default();
        let fences = t.partition_fences(0, None, &ropts).unwrap();
        t.read_block_fence(&fences[0], None, &ropts).unwrap();
        let (held, _) = t.read_block_fence(&fences[0], None, &ropts).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut i = tid;
                while !stop.load(Ordering::Relaxed) {
                    let k = i % 2000;
                    let got = t
                        .get(format!("key{k:06}").as_bytes(), SeqNo::MAX)
                        .unwrap()
                        .unwrap();
                    assert_eq!(got.value, format!("value-{k}").as_bytes());
                    i += 37;
                }
            }));
        }
        // What compaction's table teardown does: drop every cached entry
        // for the file — pinned partitions included — while reads are in
        // flight. Readers must refetch, never crash or misread.
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(cache.invalidate_file(t.file) > 0);
        assert_eq!(cache.pinned_bytes(), 0, "pinned partitions dropped");
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }

        // A Bytes handle taken before the invalidation still reads
        // correctly: the refcount keeps the allocation alive after the
        // cache dropped its reference.
        let mut it = Table::block_iter(held, true, &ropts).unwrap();
        let e = it.next().unwrap().unwrap();
        assert_eq!(e.user_key().as_bytes(), b"key000000");

        // And the table itself recovers: the next read refills the cache.
        let got = t.get(b"key000777", SeqNo::MAX).unwrap().unwrap();
        assert_eq!(got.value, b"value-777".as_slice());
    }
}
