//! Entry iterators and the k-way merge.
//!
//! Scans, compactions, and recovery all consume a single ordered stream of
//! internal entries drawn from many sources (memtables, level runs). The
//! [`MergeIter`] produces that stream: internal-key order (user key
//! ascending, newest version first), sources tie-broken by recency.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lsm_types::{InternalEntry, InternalKey, Result};

/// A fallible forward iterator over internal entries in internal-key order.
pub trait EntryIter: Send {
    /// The next entry, or `None` at the end.
    fn next_entry(&mut self) -> Result<Option<InternalEntry>>;
}

/// An [`EntryIter`] over an in-memory, already-sorted entry list (memtable
/// snapshots, test fixtures).
pub struct VecEntryIter {
    entries: std::vec::IntoIter<InternalEntry>,
}

impl VecEntryIter {
    /// Wraps `entries`, which must already be in internal-key order.
    pub fn new(entries: Vec<InternalEntry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].key <= w[1].key));
        VecEntryIter {
            entries: entries.into_iter(),
        }
    }
}

impl EntryIter for VecEntryIter {
    fn next_entry(&mut self) -> Result<Option<InternalEntry>> {
        Ok(self.entries.next())
    }
}

struct HeapItem {
    entry: InternalEntry,
    /// Lower = more recent source; ties on identical internal keys (which
    /// can only happen across sources replaying the same write) go to the
    /// most recent source.
    source: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.entry.key == other.entry.key && self.source == other.source
    }
}
impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-first ordering.
        other
            .entry
            .key
            .cmp(&self.entry.key)
            .then_with(|| other.source.cmp(&self.source))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges many [`EntryIter`]s into one ordered stream.
///
/// Sources must be passed **newest first** (memtable, then L0 runs young to
/// old, then deeper levels): on identical internal keys the earlier source
/// wins and later duplicates are dropped.
pub struct MergeIter {
    sources: Vec<Box<dyn EntryIter>>,
    heap: BinaryHeap<HeapItem>,
    last_yielded: Option<InternalKey>,
    initialized: bool,
}

impl MergeIter {
    /// Creates a merge over `sources` (ordered newest-first).
    pub fn new(sources: Vec<Box<dyn EntryIter>>) -> Self {
        MergeIter {
            sources,
            heap: BinaryHeap::new(),
            last_yielded: None,
            initialized: false,
        }
    }

    fn refill(&mut self, source: usize) -> Result<()> {
        if let Some(entry) = self.sources[source].next_entry()? {
            self.heap.push(HeapItem { entry, source });
        }
        Ok(())
    }

    fn init(&mut self) -> Result<()> {
        for i in 0..self.sources.len() {
            self.refill(i)?;
        }
        self.initialized = true;
        Ok(())
    }
}

impl EntryIter for MergeIter {
    fn next_entry(&mut self) -> Result<Option<InternalEntry>> {
        if !self.initialized {
            self.init()?;
        }
        loop {
            let Some(item) = self.heap.pop() else {
                return Ok(None);
            };
            self.refill(item.source)?;
            // Drop exact-duplicate internal keys from older sources.
            if self.last_yielded.as_ref() == Some(&item.entry.key) {
                continue;
            }
            self.last_yielded = Some(item.entry.key.clone());
            return Ok(Some(item.entry));
        }
    }
}

/// Drains an [`EntryIter`] into a vector (test and small-scan helper).
pub fn collect_all(mut it: impl EntryIter) -> Result<Vec<InternalEntry>> {
    let mut out = Vec::new();
    while let Some(e) = it.next_entry()? {
        out.push(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &[u8], val: &[u8], seqno: u64) -> InternalEntry {
        InternalEntry::put(key, val.to_vec(), seqno, 0)
    }

    #[test]
    fn merges_in_internal_key_order() {
        let a = VecEntryIter::new(vec![put(b"a", b"1", 10), put(b"c", b"3", 12)]);
        let b = VecEntryIter::new(vec![put(b"b", b"2", 11), put(b"d", b"4", 13)]);
        let merged = collect_all(MergeIter::new(vec![Box::new(a), Box::new(b)])).unwrap();
        let keys: Vec<&[u8]> = merged.iter().map(|e| e.user_key().as_bytes()).collect();
        assert_eq!(keys, vec![b"a", b"b", b"c", b"d"]);
    }

    #[test]
    fn versions_of_one_key_newest_first() {
        let newer = VecEntryIter::new(vec![put(b"k", b"v2", 20)]);
        let older = VecEntryIter::new(vec![put(b"k", b"v1", 10)]);
        let merged = collect_all(MergeIter::new(vec![Box::new(newer), Box::new(older)])).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].seqno(), 20);
        assert_eq!(merged[1].seqno(), 10);
    }

    #[test]
    fn duplicate_internal_keys_deduped_newest_source_wins() {
        // Same (key, seqno) in two sources — e.g. WAL replay overlapping a
        // flushed run. The newer source (index 0) must win.
        let a = VecEntryIter::new(vec![put(b"k", b"from-a", 5)]);
        let b = VecEntryIter::new(vec![put(b"k", b"from-b", 5)]);
        let merged = collect_all(MergeIter::new(vec![Box::new(a), Box::new(b)])).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(&merged[0].value[..], b"from-a");
    }

    #[test]
    fn empty_sources_ok() {
        let merged = collect_all(MergeIter::new(vec![])).unwrap();
        assert!(merged.is_empty());
        let a = VecEntryIter::new(vec![]);
        let b = VecEntryIter::new(vec![put(b"x", b"1", 1)]);
        let merged = collect_all(MergeIter::new(vec![Box::new(a), Box::new(b)])).unwrap();
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn large_interleaved_merge() {
        // 4 sources with interleaved keys; verify global order and count.
        let mut sources: Vec<Box<dyn EntryIter>> = Vec::new();
        for s in 0..4u64 {
            let entries: Vec<InternalEntry> = (0..250u64)
                .map(|i| {
                    let k = i * 4 + s;
                    put(format!("{k:06}").as_bytes(), b"v", k + 1)
                })
                .collect();
            sources.push(Box::new(VecEntryIter::new(entries)));
        }
        let merged = collect_all(MergeIter::new(sources)).unwrap();
        assert_eq!(merged.len(), 1000);
        assert!(merged.windows(2).all(|w| w[0].key < w[1].key));
    }
}
