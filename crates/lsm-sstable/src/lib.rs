//! The immutable sorted-run file format (SSTable) for `lsm-lab`.
//!
//! Every flush and every compaction produces files in this format
//! (tutorial §2.1.1-C: immutable, compact, written once):
//!
//! ```text
//! +--------------+--------------+-----+-------------+--------------+--------+
//! | data block 0 | data block 1 | ... | index block | filter block | footer |
//! +--------------+--------------+-----+-------------+--------------+--------+
//! ```
//!
//! * **Data blocks** (~4 KiB) hold encoded [`lsm_types::InternalEntry`]s in
//!   internal-key order, each block CRC-protected.
//! * The **index block** holds one *fence pointer* per data block — the
//!   block's first internal key plus its offset/length — kept in memory by
//!   readers so a point lookup touches exactly one data block
//!   (tutorial §2.1.3).
//! * The **filter block** holds a serialized point filter
//!   (Bloom / blocked Bloom / cuckoo, per [`lsm_filters::PointFilterKind`]).
//! * The **footer** carries table statistics (entry / tombstone counts, key
//!   range, seqno and timestamp ranges) that compaction policies consume.
//!
//! [`TableBuilder`] writes tables; [`Table`] reads them through the block
//! cache; [`MergeIter`] performs the k-way ordered merge that compaction,
//! scans, and recovery are built from.

mod block;
mod builder;
mod iter;
mod meta;
mod reader;

pub use block::{BlockBuilder, BlockIter};
pub use builder::{TableBuilder, TableBuilderOptions};
pub use iter::{collect_all, EntryIter, MergeIter, VecEntryIter};
pub use meta::TableMeta;
pub use reader::{Table, TableIter, TableReadOpts};

/// Target uncompressed size of one data block: one I/O page.
pub const BLOCK_SIZE: usize = lsm_types::PAGE_SIZE;
