//! Table metadata: the statistics block and footer.

use lsm_types::encoding::{put_len_prefixed, put_u32, put_u64, put_varint, Decoder};
use lsm_types::{checksum, Error, KeyRange, Result, SeqNo, UserKey};

/// Magic number identifying an `lsm-lab` table footer.
pub const TABLE_MAGIC: u64 = 0x4c53_4d4c_4142_0001; // "LSMLAB" v1

/// Fixed footer: `meta_offset u64 | meta_len u32 | crc u32 | magic u64`.
pub const FOOTER_LEN: usize = 24;

/// Everything a reader or a compaction planner needs to know about a table
/// without touching its data blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct TableMeta {
    /// Number of entries (all kinds).
    pub entry_count: u64,
    /// Number of point/single-delete tombstones.
    pub tombstone_count: u64,
    /// Number of range tombstones.
    pub range_tombstone_count: u64,
    /// Smallest and largest user keys.
    pub key_range: KeyRange,
    /// Smallest sequence number in the table.
    pub min_seqno: SeqNo,
    /// Largest sequence number in the table.
    pub max_seqno: SeqNo,
    /// Oldest logical timestamp (age of the oldest entry; Lethe's
    /// delete-persistence trigger reads this).
    pub min_ts: u64,
    /// Newest logical timestamp.
    pub max_ts: u64,
    /// Total encoded size of data blocks in bytes.
    pub data_bytes: u64,
    /// Byte offset of the top-level index block (the fence over index
    /// partitions).
    pub index_offset: u64,
    /// Byte length of the top-level index block.
    pub index_len: u64,
    /// Byte offset of the filter region (0-length when absent).
    pub filter_offset: u64,
    /// Total byte length of the filter region (all partitions).
    pub filter_len: u64,
    /// Discriminant of the filter implementation
    /// ([`lsm_filters::PointFilterKind::as_u8`]).
    pub filter_kind: u8,
    /// The table's range tombstones `(start, end_exclusive, seqno)`,
    /// duplicated out of the data blocks so readers can mask deleted ranges
    /// without any extra I/O (range deletes are rare; this stays tiny).
    pub range_tombstones: Vec<(UserKey, UserKey, SeqNo)>,
    /// Total number of data blocks (so readers need not decode every index
    /// partition to size the table).
    pub data_blocks: u64,
    /// Per-partition filter handles `(offset, len)`, parallel to the index
    /// partitions; a 0-length handle means that partition has no filter.
    pub filter_partitions: Vec<(u64, u64)>,
}

impl TableMeta {
    /// Fraction of entries that are tombstones — the statistic
    /// tombstone-density compaction picking (Lethe) sorts by.
    pub fn tombstone_density(&self) -> f64 {
        if self.entry_count == 0 {
            0.0
        } else {
            (self.tombstone_count + self.range_tombstone_count) as f64 / self.entry_count as f64
        }
    }

    /// Serializes the meta block (varint fields + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        put_varint(&mut buf, self.entry_count);
        put_varint(&mut buf, self.tombstone_count);
        put_varint(&mut buf, self.range_tombstone_count);
        put_len_prefixed(&mut buf, self.key_range.min.as_bytes());
        put_len_prefixed(&mut buf, self.key_range.max.as_bytes());
        put_varint(&mut buf, self.min_seqno);
        put_varint(&mut buf, self.max_seqno);
        put_varint(&mut buf, self.min_ts);
        put_varint(&mut buf, self.max_ts);
        put_varint(&mut buf, self.data_bytes);
        put_varint(&mut buf, self.index_offset);
        put_varint(&mut buf, self.index_len);
        put_varint(&mut buf, self.filter_offset);
        put_varint(&mut buf, self.filter_len);
        buf.push(self.filter_kind);
        put_varint(&mut buf, self.range_tombstones.len() as u64);
        for (start, end, seqno) in &self.range_tombstones {
            put_len_prefixed(&mut buf, start.as_bytes());
            put_len_prefixed(&mut buf, end.as_bytes());
            put_varint(&mut buf, *seqno);
        }
        put_varint(&mut buf, self.data_blocks);
        put_varint(&mut buf, self.filter_partitions.len() as u64);
        for (offset, len) in &self.filter_partitions {
            put_varint(&mut buf, *offset);
            put_varint(&mut buf, *len);
        }
        let crc = checksum::crc32c(&buf);
        put_u32(&mut buf, crc);
        buf
    }

    /// Decodes a meta block, verifying its CRC.
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::Corruption("meta block too short".into()));
        }
        let (payload, trailer) = data.split_at(data.len() - 4);
        let crc = u32::from_le_bytes(
            trailer
                .try_into()
                .map_err(|_| Error::Corruption("meta trailer truncated".into()))?,
        );
        if !checksum::verify(payload, crc) {
            return Err(Error::Corruption("meta block checksum mismatch".into()));
        }
        let mut dec = Decoder::new(payload);
        let entry_count = dec.varint()?;
        let tombstone_count = dec.varint()?;
        let range_tombstone_count = dec.varint()?;
        let min = UserKey::copy_from(dec.len_prefixed()?);
        let max = UserKey::copy_from(dec.len_prefixed()?);
        let min_seqno = dec.varint()?;
        let max_seqno = dec.varint()?;
        let min_ts = dec.varint()?;
        let max_ts = dec.varint()?;
        let data_bytes = dec.varint()?;
        let index_offset = dec.varint()?;
        let index_len = dec.varint()?;
        let filter_offset = dec.varint()?;
        let filter_len = dec.varint()?;
        let filter_kind = dec.u8()?;
        let n_rt = dec.varint()? as usize;
        let mut range_tombstones = Vec::with_capacity(n_rt.min(1024));
        for _ in 0..n_rt {
            let start = UserKey::copy_from(dec.len_prefixed()?);
            let end = UserKey::copy_from(dec.len_prefixed()?);
            let seqno = dec.varint()?;
            range_tombstones.push((start, end, seqno));
        }
        let data_blocks = dec.varint()?;
        let n_fp = dec.varint()? as usize;
        let mut filter_partitions = Vec::with_capacity(n_fp.min(1 << 16));
        for _ in 0..n_fp {
            let offset = dec.varint()?;
            let len = dec.varint()?;
            filter_partitions.push((offset, len));
        }
        Ok(TableMeta {
            entry_count,
            tombstone_count,
            range_tombstone_count,
            key_range: KeyRange { min, max },
            min_seqno,
            max_seqno,
            min_ts,
            max_ts,
            data_bytes,
            index_offset,
            index_len,
            filter_offset,
            filter_len,
            filter_kind,
            range_tombstones,
            data_blocks,
            filter_partitions,
        })
    }
}

/// Encodes the fixed-size footer pointing at the meta block.
pub fn encode_footer(meta_offset: u64, meta_len: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FOOTER_LEN);
    put_u64(&mut buf, meta_offset);
    put_u32(&mut buf, meta_len);
    let crc = checksum::crc32c(&buf);
    put_u32(&mut buf, crc);
    put_u64(&mut buf, TABLE_MAGIC);
    buf
}

/// Decodes and validates a footer; returns `(meta_offset, meta_len)`.
pub fn decode_footer(data: &[u8]) -> Result<(u64, u32)> {
    if data.len() != FOOTER_LEN {
        return Err(Error::Corruption(format!(
            "footer length {} != {FOOTER_LEN}",
            data.len()
        )));
    }
    let mut dec = Decoder::new(data);
    let meta_offset = dec.u64()?;
    let meta_len = dec.u32()?;
    let crc = dec.u32()?;
    let magic = dec.u64()?;
    if magic != TABLE_MAGIC {
        return Err(Error::Corruption("bad table magic".into()));
    }
    if !checksum::verify(&data[..12], crc) {
        return Err(Error::Corruption("footer checksum mismatch".into()));
    }
    Ok((meta_offset, meta_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableMeta {
        TableMeta {
            entry_count: 1000,
            tombstone_count: 50,
            range_tombstone_count: 2,
            key_range: KeyRange::new(b"aaa", b"zzz"),
            min_seqno: 7,
            max_seqno: 1007,
            min_ts: 3,
            max_ts: 999,
            data_bytes: 65536,
            index_offset: 65536,
            index_len: 512,
            filter_offset: 66048,
            filter_len: 1200,
            filter_kind: 1,
            range_tombstones: vec![
                (UserKey::from(b"bbb"), UserKey::from(b"ccc"), 900),
                (UserKey::from(b"x"), UserKey::from(b"y"), 950),
            ],
            data_blocks: 16,
            filter_partitions: vec![(66048, 600), (66648, 600)],
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = sample();
        assert_eq!(TableMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn meta_corruption_detected() {
        let mut raw = sample().encode();
        raw[3] ^= 1;
        assert!(TableMeta::decode(&raw).is_err());
        assert!(TableMeta::decode(&[1, 2]).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = encode_footer(12345, 678);
        assert_eq!(f.len(), FOOTER_LEN);
        assert_eq!(decode_footer(&f).unwrap(), (12345, 678));
    }

    #[test]
    fn footer_rejects_bad_magic_and_crc() {
        let mut f = encode_footer(1, 2);
        f[FOOTER_LEN - 1] ^= 1; // magic
        assert!(decode_footer(&f).is_err());
        let mut f = encode_footer(1, 2);
        f[0] ^= 1; // offset -> crc mismatch
        assert!(decode_footer(&f).is_err());
        assert!(decode_footer(&[0; 10]).is_err());
    }

    #[test]
    fn tombstone_density() {
        let m = sample();
        assert!((m.tombstone_density() - 0.052).abs() < 1e-9);
        let empty = TableMeta {
            entry_count: 0,
            ..sample()
        };
        assert_eq!(empty.tombstone_density(), 0.0);
    }
}
