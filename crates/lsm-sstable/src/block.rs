//! Data blocks: the unit of I/O and caching.

use bytes::Bytes;
use lsm_types::encoding::{put_u32, Decoder};
use lsm_types::{checksum, Error, InternalEntry, InternalKey, Result};

/// Builds one data block: encoded entries followed by a CRC-32C trailer.
#[derive(Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Creates an empty block builder.
    pub fn new() -> Self {
        BlockBuilder::default()
    }

    /// Appends an entry (caller guarantees ascending internal-key order).
    pub fn add(&mut self, entry: &InternalEntry) {
        entry.encode_into(&mut self.buf);
        self.entries += 1;
    }

    /// Current payload size in bytes (without the CRC trailer).
    pub fn payload_len(&self) -> usize {
        self.buf.len()
    }

    /// Number of entries added.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Whether no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Seals the block: payload followed by its CRC. Resets the builder for
    /// the next block.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        let crc = checksum::crc32c(&out);
        put_u32(&mut out, crc);
        self.entries = 0;
        out
    }
}

/// Verifies a block's CRC and returns its payload slice.
pub fn verify_block(block: &[u8]) -> Result<&[u8]> {
    if block.len() < 4 {
        return Err(Error::Corruption("block shorter than its trailer".into()));
    }
    let (payload, trailer) = block.split_at(block.len() - 4);
    let expected = u32::from_le_bytes(
        trailer
            .try_into()
            .map_err(|_| Error::Corruption("block trailer truncated".into()))?,
    );
    if !checksum::verify(payload, expected) {
        return Err(Error::Corruption("block checksum mismatch".into()));
    }
    Ok(payload)
}

/// Iterates the entries of one verified data block.
pub struct BlockIter {
    data: Bytes,
    /// Byte offset of the next entry within the payload.
    pos: usize,
    payload_len: usize,
}

impl BlockIter {
    /// Wraps a raw block (payload + CRC trailer), verifying the checksum.
    pub fn new(block: Bytes) -> Result<Self> {
        let payload_len = verify_block(&block)?.len();
        Ok(BlockIter {
            data: block,
            pos: 0,
            payload_len,
        })
    }

    /// Wraps a block that was already verified when it entered the cache,
    /// skipping the CRC pass. Cache hits use this on the point-lookup fast
    /// path (the block was checksummed when read from the backend); callers
    /// wanting end-to-end verification opt back into [`Self::new`] via
    /// `verify_checksums`.
    pub fn new_trusted(block: Bytes) -> Result<Self> {
        if block.len() < 4 {
            return Err(Error::Corruption("block shorter than its trailer".into()));
        }
        let payload_len = block.len() - 4;
        Ok(BlockIter {
            data: block,
            pos: 0,
            payload_len,
        })
    }

    /// Advances past entries whose internal key sorts before `probe`.
    pub fn seek(&mut self, probe: &InternalKey) -> Result<()> {
        // Entries are variable-length; a block holds only a page's worth,
        // so a linear scan is the standard approach (LevelDB restarts would
        // shave constants, not complexity).
        loop {
            let mark = self.pos;
            match self.try_next()? {
                Some(e) if e.key < *probe => continue,
                Some(_) => {
                    self.pos = mark;
                    return Ok(());
                }
                None => return Ok(()),
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<InternalEntry>> {
        if self.pos >= self.payload_len {
            return Ok(None);
        }
        let mut dec = Decoder::new(&self.data[self.pos..self.payload_len]);
        let before = dec.remaining();
        let entry = InternalEntry::decode_from(&mut dec)?;
        self.pos += before - dec.remaining();
        Ok(Some(entry))
    }
}

impl Iterator for BlockIter {
    type Item = Result<InternalEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        self.try_next().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_types::SeqNo;

    fn entries(n: u64) -> Vec<InternalEntry> {
        (0..n)
            .map(|i| {
                InternalEntry::put(
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                    n - i, // any seqno; keys distinct so order is by key
                    i,
                )
            })
            .collect()
    }

    fn build(entries: &[InternalEntry]) -> Bytes {
        let mut b = BlockBuilder::new();
        for e in entries {
            b.add(e);
        }
        Bytes::from(b.finish())
    }

    #[test]
    fn roundtrip() {
        let es = entries(50);
        let block = build(&es);
        let got: Vec<InternalEntry> = BlockIter::new(block)
            .unwrap()
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(got, es);
    }

    #[test]
    fn corruption_detected() {
        let es = entries(10);
        let mut raw = build(&es).to_vec();
        raw[5] ^= 0xff;
        assert!(BlockIter::new(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncated_block_detected() {
        let es = entries(10);
        let raw = build(&es);
        assert!(BlockIter::new(raw.slice(0..raw.len() - 1)).is_err());
        assert!(BlockIter::new(Bytes::from_static(b"abc")).is_err());
    }

    #[test]
    fn seek_lands_on_first_geq() {
        let es = entries(20);
        let block = build(&es);
        let mut it = BlockIter::new(block.clone()).unwrap();
        let probe = InternalKey::lookup(b"key0007", SeqNo::MAX);
        it.seek(&probe).unwrap();
        let first = it.next().unwrap().unwrap();
        assert_eq!(first.user_key().as_bytes(), b"key0007");

        // seeking past the end yields nothing
        let mut it = BlockIter::new(block).unwrap();
        it.seek(&InternalKey::lookup(b"zzz", SeqNo::MAX)).unwrap();
        assert!(it.next().is_none());
    }

    #[test]
    fn seek_respects_seqno_within_key() {
        let mut b = BlockBuilder::new();
        let v9 = InternalEntry::put(b"k", b"v9".to_vec(), 9, 0);
        let v5 = InternalEntry::put(b"k", b"v5".to_vec(), 5, 0);
        b.add(&v9); // internal order: higher seqno first
        b.add(&v5);
        let block = Bytes::from(b.finish());

        let mut it = BlockIter::new(block.clone()).unwrap();
        it.seek(&InternalKey::lookup(b"k", 7)).unwrap();
        let got = it.next().unwrap().unwrap();
        assert_eq!(got.seqno(), 5, "snapshot 7 must skip seqno 9");

        let mut it = BlockIter::new(block).unwrap();
        it.seek(&InternalKey::lookup(b"k", SeqNo::MAX)).unwrap();
        assert_eq!(it.next().unwrap().unwrap().seqno(), 9);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(&entries(1)[0]);
        let first = b.finish();
        assert!(b.is_empty());
        b.add(&entries(2)[1]);
        let second = b.finish();
        assert_ne!(first, second);
    }

    #[test]
    fn empty_block_is_valid() {
        let mut b = BlockBuilder::new();
        let block = Bytes::from(b.finish());
        let mut it = BlockIter::new(block).unwrap();
        assert!(it.next().is_none());
    }
}
