//! Property tests: a table must faithfully reproduce any sorted entry set.

// Test code: panicking on unexpected results is the assertion style.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_sstable::{collect_all, Table, TableBuilder, TableBuilderOptions};
use lsm_storage::{Backend, MemBackend};
use lsm_types::{InternalEntry, InternalKey, SeqNo};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = Vec<InternalEntry>> {
    // unique user keys with random seqnos; sorted by internal key
    prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..12),
        (prop::collection::vec(any::<u8>(), 0..40), 1u64..1000),
        1..300,
    )
    .prop_map(|m: BTreeMap<Vec<u8>, (Vec<u8>, u64)>| {
        m.into_iter()
            .map(|(k, (v, seqno))| InternalEntry::put(k, v, seqno, seqno))
            .collect()
    })
}

fn build(entries: &[InternalEntry], block_size: usize) -> (Arc<MemBackend>, Arc<Table>) {
    let backend = Arc::new(MemBackend::new());
    let mut b = TableBuilder::new(TableBuilderOptions {
        block_size,
        ..TableBuilderOptions::default()
    });
    for e in entries {
        b.add(e).unwrap();
    }
    let (file, _) = b.finish(backend.as_ref()).unwrap();
    let t = Table::open(backend.clone() as Arc<dyn Backend>, file, None).unwrap();
    (backend, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_entry_retrievable(entries in arb_entries(), block_size in 256usize..2048) {
        let (_backend, t) = build(&entries, block_size);
        for e in &entries {
            let got = t.get(e.user_key().as_bytes(), SeqNo::MAX).unwrap();
            prop_assert_eq!(got.as_ref(), Some(e), "lost {:?}", e.key);
            // below its seqno it is invisible
            if e.seqno() > 1 {
                let hidden = t.get(e.user_key().as_bytes(), e.seqno() - 1).unwrap();
                prop_assert!(hidden.is_none());
            }
        }
    }

    #[test]
    fn full_scan_reproduces_input(entries in arb_entries(), block_size in 256usize..2048) {
        let (_backend, t) = build(&entries, block_size);
        let scanned = collect_all(t.scan()).unwrap();
        prop_assert_eq!(scanned, entries);
    }

    #[test]
    fn scan_from_matches_suffix(entries in arb_entries(), pivot in any::<prop::sample::Index>()) {
        let (_backend, t) = build(&entries, 512);
        let pivot = pivot.index(entries.len());
        let probe = InternalKey::lookup(
            entries[pivot].user_key().as_bytes(),
            SeqNo::MAX,
        );
        let scanned = collect_all(t.scan_from(probe)).unwrap();
        prop_assert_eq!(&scanned[..], &entries[pivot..]);
    }

    #[test]
    fn meta_stats_are_exact(entries in arb_entries()) {
        let (_backend, t) = build(&entries, 1024);
        let m = t.meta();
        prop_assert_eq!(m.entry_count, entries.len() as u64);
        prop_assert_eq!(&m.key_range.min, entries.first().unwrap().user_key());
        prop_assert_eq!(&m.key_range.max, entries.last().unwrap().user_key());
        let min_seq = entries.iter().map(|e| e.seqno()).min().unwrap();
        let max_seq = entries.iter().map(|e| e.seqno()).max().unwrap();
        prop_assert_eq!(m.min_seqno, min_seq);
        prop_assert_eq!(m.max_seqno, max_seq);
    }

    #[test]
    fn absent_keys_return_none(entries in arb_entries(), probe in prop::collection::vec(any::<u8>(), 1..12)) {
        let (_backend, t) = build(&entries, 512);
        let exists = entries.iter().any(|e| e.user_key().as_bytes() == probe.as_slice());
        if !exists {
            prop_assert!(t.get(&probe, SeqNo::MAX).unwrap().is_none());
        }
    }
}
