#!/usr/bin/env bash
# Local CI gate: format, clippy, architectural lint, spec checks, tests,
# crash-recovery sweep, loom model check. Runs every step even after a
# failure so one run reports everything, then exits non-zero if any step
# failed. Each step is timed in the summary.
#
#   CHECK_ONLY=<step>   run a single gate by name, e.g.
#                       CHECK_ONLY=durability scripts/check.sh
#                       (unknown names fail: a typo must not pass silently)

set -u
cd "$(dirname "$0")/.."

declare -a NAMES=()
declare -a RESULTS=()
declare -a TIMES=()
FAILED=0
ONLY="${CHECK_ONLY:-}"
ONLY_MATCHED=0

run_step() {
    local name="$1"
    shift
    if [ -n "$ONLY" ] && [ "$name" != "$ONLY" ]; then
        return 0
    fi
    ONLY_MATCHED=1
    echo
    echo "==> ${name}: $*"
    local start end
    start=$(date +%s)
    if "$@"; then
        RESULTS+=(ok)
    else
        RESULTS+=(FAIL)
        FAILED=1
    fi
    end=$(date +%s)
    NAMES+=("$name")
    TIMES+=("$((end - start))s")
}

# The builder-era API cleanup is done: a `#[deprecated]` marker may only
# exist with an explicit sunset note on the preceding line, so deprecations
# are scheduled removals, never permanent residents.
check_no_deprecated() {
    local bad=0 file line prev
    while IFS=: read -r file line _; do
        prev=$(sed -n "$((line - 1))p" "$file")
        case "$prev" in
        *"no-deprecated: allow("*) ;;
        *)
            echo "  $file:$line: #[deprecated] without a '// no-deprecated: allow(...)' sunset note"
            bad=1
            ;;
        esac
    done < <(grep -rn '#\[deprecated' crates/*/src src examples tests 2>/dev/null)
    return "$bad"
}

run_step "fmt"      cargo fmt --all --check
run_step "clippy"   cargo clippy --workspace --all-targets -- -D warnings
run_step "lsm-lint" cargo run -q -p lsm-lint
run_step "lockgraph" cargo run -q -p lsm-lint -- --check-lock-order lock_order.json
# The checked-in durability spec (L7 effect sequences of the commit
# pipeline) must match what the linter derives from the current tree.
run_step "durability" cargo run -q -p lsm-lint -- --check-durability-order durability_order.json
# The checked-in atomics spec (L8 publication pairs and ordering profiles
# of every atomic field) must match what the linter derives.
run_step "atomics"  cargo run -q -p lsm-lint -- --check-atomics-order atomics_order.json
run_step "no-deprecated" check_no_deprecated
# Compile-time pin of the public Db/DbBuilder/WriteBatch/WriteOptions
# surface: breakage must be deliberate and land with the change.
run_step "api-surface" cargo test -q -p lsm-core --test api_surface
run_step "tests"    cargo test -q --workspace
run_step "crash"    cargo test -q --test crash_recovery
# Debug profile on purpose: the lsm-sync rank assertions only exist with
# debug assertions, so this is the run that proves the lock hierarchy.
run_step "stress"   cargo test -q --test concurrent_stress
# Same rank-asserted stress over the sharded router: cross-shard epoch
# commits racing per-shard writers, readers, and merged scans.
run_step "shard-stress" cargo test -q --test shard_stress
# Exhaustive interleaving exploration of the leader/follower commit queue
# (vendored loom, CHESS preemption bound 2): seqno contiguity, one
# append/sync per group, no ack before durable, no lost wakeups.
run_step "loom"     cargo test -q -p lsm-sync --features loom
# The lock-free layer's publication protocols (memtable occupancy,
# event-ring seqlock, epoch pins) under the store-buffer memory model,
# with seeded-misordering variants proving the checker can see the bugs.
run_step "loom-lockfree" cargo test -q -p lsm-sync --features loom --test loom_lockfree
# Observability gate: lsm-obs unit tests and the trace-schema golden
# fixtures, then the release-mode overhead smoke test (instrumented vs
# Observability::Off within budget on the vector-memtable put path;
# release because timing asserts are meaningless at opt-level 0).
run_step "obs"      cargo test -q -p lsm-obs
# Full-stack export pipeline: causal span nesting through real compactions,
# the metrics exporter's JSONL delta round-trip, and the Prometheus
# surfaces (Db + ShardedDb per-shard labels), plus the exposition goldens.
run_step "obs-export" cargo test -q -p lsm-core --test obs_export --test metrics_golden
run_step "obs-overhead" cargo test -q --release --test obs_overhead -- --ignored
# Read-path gate: pinned index/filter partitions must keep skewed point-get
# p99 ahead of the unpinned-aux policy (paired A/B, median of round ratios;
# release for the same reason as obs-overhead).
run_step "read-regression" cargo test -q --release --test read_regression -- --ignored

if [ -n "$ONLY" ] && [ "$ONLY_MATCHED" -eq 0 ]; then
    echo "CHECK_ONLY=$ONLY matches no step" >&2
    exit 2
fi

echo
echo "==================== summary ===================="
for i in "${!NAMES[@]}"; do
    printf '  %-13s %-5s %6s\n' "${NAMES[$i]}" "${RESULTS[$i]}" "${TIMES[$i]}"
done
if [ "$FAILED" -ne 0 ]; then
    echo "RESULT: FAIL"
    exit 1
fi
echo "RESULT: PASS"
