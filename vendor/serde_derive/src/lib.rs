//! Offline stand-in for `serde_derive`.
//!
//! The stub `serde` crate blanket-implements its `Serialize` /
//! `Deserialize` marker traits for every type, so these derives have
//! nothing to generate — they exist so `#[derive(Serialize, Deserialize)]`
//! attributes in downstream crates keep compiling (and keep their
//! `use serde::...` imports live) without the real proc-macro stack.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the blanket impl in the stub `serde` covers
/// the deriving type already.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; see [`derive_serialize`].
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
