//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API surface lsm-lab's property tests use — the
//! [`Strategy`] trait, `any::<T>()`, `Just`, tuple/range strategies,
//! `prop::collection::{vec, btree_map}`, `prop::option::of`,
//! `prop::sample::Index`, `prop_oneof!`, and the [`proptest!`] test macro —
//! over a deterministic seeded generator. Two deliberate simplifications
//! versus the real crate:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed;
//!   re-running reproduces it exactly, which is what matters in CI.
//! * **Fixed derivation of case seeds** from the test's module path and
//!   case index, so failures are stable across runs and machines.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Derives the deterministic RNG for one test case.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_path.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Runner configuration; only the case count is tunable here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        let (lo, hi) = (*self.start(), *self.end());
        if hi == u32::MAX {
            rng.gen_range(u64::from(lo)..u64::from(hi) + 1) as u32
        } else {
            rng.gen_range(lo..hi + 1)
        }
    }
}

impl Strategy for std::ops::RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        if hi == u64::MAX {
            // Avoid overflow on the exclusive bound; fold the one
            // unreachable value back uniformly.
            let v = rng.gen::<u64>();
            if v >= lo {
                v
            } else {
                lo + v % (u64::MAX - lo + 1).max(1)
            }
        } else {
            rng.gen_range(lo..hi + 1)
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy types backing [`any`] and the combinator API.
pub mod strategy {
    use super::*;

    /// Full-range strategy for primitives (see [`Arbitrary`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrimitive<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> AnyPrimitive<T> {
        pub(crate) fn new() -> Self {
            AnyPrimitive {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: rand::Standard> Strategy for AnyPrimitive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen::<T>()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A weighted choice among boxed strategies (the `prop_oneof!` backing).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights cover the sampled range")
        }
    }

    /// Boxes one `prop_oneof!` arm (helper that lets type inference unify
    /// every arm to the same `Value`).
    pub fn union_arm<T, S>(weight: u32, strat: S) -> (u32, BoxedStrategy<T>)
    where
        S: Strategy<Value = T> + 'static,
    {
        (weight, Box::new(strat))
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

macro_rules! impl_arbitrary_primitive {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                strategy::AnyPrimitive::new()
            }
        }
    )*};
}

impl_arbitrary_primitive!(u8, u32, u64, usize, bool, f32, f64);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// An inclusive-exclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`: vectors of `elem` values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with entry counts drawn from a
    /// [`SizeRange`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `prop::collection::btree_map`: maps of `key -> value` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut map = std::collections::BTreeMap::new();
            // Duplicate keys collapse; retry a bounded number of times so
            // the minimum size is honored with overwhelming probability.
            let mut attempts = 0;
            while map.len() < target && attempts < target * 10 + 32 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy producing `Option<T>` (3:1 biased toward `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of`: `None` or a value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::*;

    /// An index into a collection whose length is only known at use site.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of length `len`.
        ///
        /// # Panics
        /// Panics if `len` is zero, matching the real crate.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy for [`Index`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.gen::<u64>())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;

        fn arbitrary() -> AnyIndex {
            AnyIndex
        }
    }
}

/// The `prop` namespace as exposed by `proptest::prelude`.
pub mod prop {
    pub use crate::{collection, option, sample};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!((<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// One-of strategy choice, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm(1u32, $strat)),+
        ])
    };
}

/// Property-context assertion (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-context equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-context inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(Vec<u8>),
        Get(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(v in 0u8..32, (a, b) in (any::<u64>(), 0.0f64..1.0)) {
            prop_assert!(v < 32);
            let _ = a;
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn collections_honor_sizes(
            xs in prop::collection::vec(any::<u8>(), 2..8),
            m in prop::collection::btree_map(any::<u8>(), any::<u64>(), 1..5),
            o in prop::option::of(Just(7u8)),
            ix in any::<prop::sample::Index>(),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            prop_assert!(!m.is_empty() && m.len() < 5);
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(ix.index(xs.len()) < xs.len());
        }

        #[test]
        fn oneof_and_map_cover_arms(ops in prop::collection::vec(prop_oneof![
            3 => prop::collection::vec(any::<u8>(), 0..4).prop_map(Op::Put),
            1 => any::<u8>().prop_map(Op::Get),
        ], 32..33)) {
            prop_assert_eq!(ops.len(), 32);
        }
    }

    #[test]
    fn case_seeds_are_deterministic() {
        let mut a = crate::test_rng("x::y", 3);
        let mut b = crate::test_rng("x::y", 3);
        let mut c = crate::test_rng("x::y", 4);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert_ne!(b.gen::<u64>(), c.gen::<u64>());
    }
}
