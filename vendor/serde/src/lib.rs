//! Offline stand-in for the `serde` crate.
//!
//! lsm-lab uses serde only as derive decoration on tuning structs (nothing
//! in-tree serializes through it — there is no `serde_json` here). This
//! stub keeps those derives compiling offline: marker traits with blanket
//! impls, and no-op derive macros re-exported under the usual names.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so derived and hand-written bounds alike are satisfied.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented like
/// [`Serialize`].
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
