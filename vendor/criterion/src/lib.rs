//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface lsm-lab's `benches/micro.rs`
//! uses. Measurement is deliberately simple: each benchmark closure is
//! warmed once, then timed over a fixed iteration budget and reported as
//! mean wall-clock time per iteration on stdout. When the harness runs
//! under `cargo test` (cargo passes `--test` to `harness = false` bench
//! targets), benchmarks execute a single iteration each so the test suite
//! stays fast while still smoke-testing every bench body.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per measured benchmark (kept small: this harness smoke-tests
/// and ballpark-times; it does not do statistics).
const MEASURE_ITERS: u32 = 30;

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    smoke_only: bool,
}

impl Bencher {
    /// Times `routine`, reporting mean nanoseconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed.as_nanos() / u128::from(MEASURE_ITERS);
        println!("      {per_iter:>12} ns/iter");
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness uses a fixed budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `f` as one benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("bench {}/{}", self.name, id.name);
        let mut b = Bencher {
            smoke_only: self.criterion.smoke_only,
        };
        f(&mut b);
        self
    }

    /// Runs `f` with a borrowed input as one benchmark of this group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        println!("bench {}/{}", self.name, id.name);
        let mut b = Bencher {
            smoke_only: self.criterion.smoke_only,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (reporting is line-by-line, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, cargo invokes harness = false bench targets
        // with `--test`; run each closure once so the suite stays fast.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
