//! Offline stand-in for the `loom` model checker.
//!
//! [`model`] runs a closure under every schedule a bounded exhaustive
//! search can reach: execution is serialized onto one runnable thread at a
//! time, every synchronization operation (lock, unlock, condvar wait and
//! notify, atomic access, spawn, join) is a *scheduling point*, and the
//! explorer replays the closure once per distinct decision sequence,
//! depth-first. A failed assertion, a panic, or a deadlock in any
//! interleaving aborts the search and reports the schedule that produced
//! it.
//!
//! Two deliberate simplifications keep the search bounded and sound for
//! the protocols this workspace checks:
//!
//! - **Preemption bounding** (CHESS-style): a context switch away from a
//!   thread that could have continued costs one unit of a small budget
//!   (`LOOM_MAX_PREEMPTIONS`, default 2); switches forced by blocking are
//!   free. Most real concurrency bugs need very few preemptions, and the
//!   bound turns an exponential schedule space into a polynomial one.
//! - **Timeouts fire only at quiescence**: a timed condvar wait
//!   (`wait_for`) can only return "timed out" when *no* thread is
//!   runnable. This models the engine's contract that timeouts are a
//!   safety net rather than the progress mechanism, without multiplying
//!   the schedule space by every possible timer firing.
//!
//! Memory-model caveat: the model explores a TSO-like store-buffer
//! relaxation. Each thread owns a buffer of delayed `Relaxed` stores: at
//! every `Relaxed` store the explorer branches (cost-free) between
//! committing it to shared memory immediately and parking it in the
//! buffer, where it stays visible to the storing thread (loads forward
//! from the own buffer) but invisible to everyone else until the thread's
//! next *release point* — a Release/SeqCst store, any RMW, a lock
//! release, a condvar wait, a spawn, or thread exit — flushes the buffer
//! in order. Release/Acquire/SeqCst accesses and all RMWs are explored as
//! sequentially consistent. This catches missing-`Release` publication
//! bugs in addition to interleaving bugs; relaxed *load* reordering
//! (a missing `Acquire` on the consumer side) is not modeled.
//!
//! Unlike real loom there is no `UnsafeCell` modeling and no `lazy_static`
//! support; the surface here is exactly what `lsm-sync`'s primitives and
//! the commit-pipeline models need.

#![forbid(unsafe_code)]

use std::time::Duration;

pub mod sync {
    //! Model-checked replacements for `parking_lot`-shaped primitives.

    use super::rt;
    use std::ops::{Deref, DerefMut};
    use std::sync::PoisonError;
    use std::time::Duration;

    /// Result of a timed condvar wait.
    #[derive(Clone, Copy, Debug)]
    pub struct WaitTimeoutResult(pub(crate) bool);

    impl WaitTimeoutResult {
        /// Whether the wait ended by timeout rather than notification.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// A model-checked mutual-exclusion lock with `parking_lot`'s API
    /// shape: `lock()` returns the guard directly.
    ///
    /// Mutual exclusion is enforced at the *model* level (the scheduler
    /// blocks contending model threads); the embedded `std` mutex only
    /// carries the data and is never contended.
    #[derive(Debug)]
    pub struct Mutex<T: ?Sized> {
        id: usize,
        data: std::sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`]. The `Option` is `None` only transiently
    /// inside a condvar wait, which hands the data guard back while the
    /// model thread is parked.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates an unlocked mutex holding `value`.
        pub fn new(value: T) -> Self {
            Self {
                id: rt::next_object_id(),
                data: std::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking this model thread (cooperatively)
        /// while another model thread holds it.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            rt::lock_acquire(self.id, true, "lock");
            MutexGuard {
                lock: self,
                inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard active")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard active")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            rt::lock_release(self.lock.id, true);
        }
    }

    /// A model-checked reader-writer lock (`parking_lot` API shape).
    #[derive(Debug)]
    pub struct RwLock<T: ?Sized> {
        id: usize,
        data: std::sync::RwLock<T>,
    }

    /// Shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        id: usize,
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    }

    /// Exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        id: usize,
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    }

    impl<T> RwLock<T> {
        /// Creates an unlocked rwlock holding `value`.
        pub fn new(value: T) -> Self {
            Self {
                id: rt::next_object_id(),
                data: std::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            rt::lock_acquire(self.id, false, "read");
            RwLockReadGuard {
                id: self.id,
                inner: Some(self.data.read().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        /// Acquires exclusive access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            rt::lock_acquire(self.id, true, "write");
            RwLockWriteGuard {
                id: self.id,
                inner: Some(self.data.write().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard active")
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            rt::lock_release(self.id, false);
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard active")
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard active")
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            rt::lock_release(self.id, true);
        }
    }

    /// A model-checked condition variable (`parking_lot` API shape:
    /// waits take `&mut MutexGuard`).
    #[derive(Debug)]
    pub struct Condvar {
        id: usize,
    }

    impl Condvar {
        /// Creates a condition variable.
        pub fn new() -> Self {
            Self {
                id: rt::next_object_id(),
            }
        }

        /// Parks this model thread until notified, atomically releasing
        /// the guard's mutex. An untimed wait that can never be notified
        /// is reported as a deadlock.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            self.park(guard, false);
        }

        /// Parks until notified or "timed out". The model fires the
        /// timeout only when no thread is runnable (see the crate docs).
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            _timeout: Duration,
        ) -> WaitTimeoutResult {
            WaitTimeoutResult(self.park(guard, true))
        }

        fn park<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> bool {
            // Hand the data guard back for the duration of the park; the
            // model-level release inside `cv_wait` is what lets other
            // model threads acquire the mutex.
            guard.inner.take();
            let timed_out = rt::cv_wait(self.id, guard.lock.id, timed);
            guard.inner = Some(
                guard
                    .lock
                    .data
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            timed_out
        }

        /// Wakes the longest-parked waiter (deterministically: the lowest
        /// thread id), if any.
        pub fn notify_one(&self) {
            rt::cv_notify(self.id, false);
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            rt::cv_notify(self.id, true);
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    pub mod atomic {
        //! Model-checked atomics. Every access is a scheduling point.
        //! Values live in a shared `Arc<AtomicU64>` cell so per-thread
        //! store buffers can name them; `Relaxed` stores may be delayed
        //! (see the crate docs), everything else is explored as
        //! sequentially consistent.

        pub use std::sync::atomic::Ordering;

        use super::super::rt;
        use std::sync::Arc;

        macro_rules! atomic {
            ($name:ident, $ty:ty, $to:expr, $from:expr, $doc:literal) => {
                #[doc = $doc]
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: Arc<std::sync::atomic::AtomicU64>,
                }

                impl $name {
                    /// Creates the atomic with an initial value.
                    pub fn new(v: $ty) -> Self {
                        Self {
                            inner: Arc::new(std::sync::atomic::AtomicU64::new($to(v))),
                        }
                    }

                    /// Atomic load (scheduling point). Forwards from this
                    /// thread's own store buffer when it holds a newer
                    /// value for this cell.
                    pub fn load(&self, o: Ordering) -> $ty {
                        $from(rt::atomic_load(&self.inner, o))
                    }

                    /// Atomic store (scheduling point). A `Relaxed` store
                    /// may be parked in the store buffer.
                    pub fn store(&self, v: $ty, o: Ordering) {
                        rt::atomic_store(&self.inner, $to(v), o);
                    }

                    /// Atomic swap (scheduling point; flushes the store
                    /// buffer, explored as SeqCst like every RMW).
                    pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                        $from(rt::atomic_rmw(&self.inner, "atomic swap", |_| $to(v)))
                    }
                }
            };
        }

        atomic!(
            AtomicBool,
            bool,
            (|v: bool| v as u64),
            (|v: u64| v != 0),
            "Model-checked `AtomicBool`."
        );
        atomic!(
            AtomicU64,
            u64,
            (|v: u64| v),
            (|v: u64| v),
            "Model-checked `AtomicU64`."
        );
        atomic!(
            AtomicUsize,
            usize,
            (|v: usize| v as u64),
            (|v: u64| v as usize),
            "Model-checked `AtomicUsize`."
        );

        impl AtomicU64 {
            /// Atomic add, returning the previous value (scheduling
            /// point; flushes the store buffer).
            pub fn fetch_add(&self, v: u64, _o: Ordering) -> u64 {
                rt::atomic_rmw(&self.inner, "atomic fetch_add", |c| c.wrapping_add(v))
            }

            /// Atomic subtract, returning the previous value (scheduling
            /// point; flushes the store buffer).
            pub fn fetch_sub(&self, v: u64, _o: Ordering) -> u64 {
                rt::atomic_rmw(&self.inner, "atomic fetch_sub", |c| c.wrapping_sub(v))
            }
        }

        impl AtomicUsize {
            /// Atomic add, returning the previous value (scheduling
            /// point; flushes the store buffer).
            pub fn fetch_add(&self, v: usize, _o: Ordering) -> usize {
                rt::atomic_rmw(&self.inner, "atomic fetch_add", |c| {
                    c.wrapping_add(v as u64)
                }) as usize
            }

            /// Atomic subtract, returning the previous value (scheduling
            /// point; flushes the store buffer).
            pub fn fetch_sub(&self, v: usize, _o: Ordering) -> usize {
                rt::atomic_rmw(&self.inner, "atomic fetch_sub", |c| {
                    c.wrapping_sub(v as u64)
                }) as usize
            }
        }
    }
}

pub mod thread {
    //! Model-checked threads.

    use super::rt;

    /// Handle to a model thread; joining is a scheduling point.
    pub struct JoinHandle<T> {
        id: usize,
        inner: std::thread::JoinHandle<T>,
    }

    /// Spawns a model thread. The closure runs under the model scheduler:
    /// it executes only when the explorer schedules it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (id, inner) = rt::spawn_thread(f);
        JoinHandle { id, inner }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (cooperatively) until the thread finishes.
        pub fn join(self) -> std::thread::Result<T> {
            rt::join_thread(self.id);
            self.inner.join()
        }
    }

    /// A bare scheduling point: lets any other runnable thread run.
    pub fn yield_now() {
        rt::yield_point("yield_now");
    }
}

/// Explores every schedule of `f` reachable within the preemption bound.
///
/// Panics with the failing schedule's trace if any execution panics or
/// deadlocks. Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 2) and
/// `LOOM_MAX_ITERATIONS` (default 100000, a runaway guard — exceeding it
/// fails the test rather than reporting false confidence).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::run_model(std::sync::Arc::new(f));
}

/// Convenience wrapper matching loom's builder-free entry point for timed
/// scenarios; identical to [`model`] (the model has no real clock).
pub fn model_with_timeout<F>(f: F, _timeout: Duration)
where
    F: Fn() + Send + Sync + 'static,
{
    model(f);
}

mod rt {
    //! The explorer: a cooperative scheduler over real threads plus a
    //! depth-first replay loop over scheduling decisions.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};
    use std::sync::{Once, PoisonError};

    /// Sentinel panic payload used to unwind model threads once an
    /// execution aborts; filtered from the panic hook and from reports.
    struct AbortToken;

    /// Identity source for model objects (locks, condvars). Process-global
    /// so ids never collide across executions or concurrent models.
    static NEXT_OBJECT: AtomicUsize = AtomicUsize::new(0);

    pub(crate) fn next_object_id() -> usize {
        NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
    }

    /// Why a parked thread was made runnable again.
    #[derive(Clone, Copy, PartialEq)]
    enum Wake {
        None,
        Notified,
        TimedOut,
    }

    /// Model-thread state.
    enum TState {
        Runnable,
        /// Parked trying to acquire a lock (`write` = exclusive).
        BlockedLock {
            lock: usize,
            write: bool,
        },
        /// Parked in a condvar wait.
        Waiting {
            cv: usize,
            timed: bool,
        },
        /// Parked joining another model thread.
        BlockedJoin {
            target: usize,
        },
        Finished,
    }

    /// Model-level lock state; data lives in the wrapper's std primitive.
    #[derive(Default)]
    struct LockSt {
        writer: Option<usize>,
        readers: usize,
    }

    /// One recorded scheduling decision.
    pub(crate) struct Branch {
        /// Runnable thread ids at the decision, canonical order (the
        /// previously running thread first when it is still runnable).
        options: Vec<usize>,
        /// Index into `options` taken on the current execution.
        chosen: usize,
        /// The running thread, when it was itself still runnable (used to
        /// price preemptions during backtracking).
        current: Option<usize>,
    }

    struct State {
        threads: Vec<TState>,
        wake: Vec<Wake>,
        active: usize,
        locks: HashMap<usize, LockSt>,
        /// Per-thread store buffers: `Relaxed` stores the explorer chose
        /// to delay, in commit order. Entries name the shared cell by
        /// `Arc` identity and are drained at every release point.
        buffers: Vec<Vec<(Arc<StdAtomicU64>, u64)>>,
        path: Vec<Branch>,
        step: usize,
        preemptions: usize,
        bound: usize,
        abort: bool,
        done: bool,
        failure: Option<String>,
        trace: Vec<(usize, &'static str)>,
    }

    struct Sched {
        m: OsMutex<State>,
        cv: OsCondvar,
    }

    thread_local! {
        static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
    }

    fn lock_state(sched: &Sched) -> OsGuard<'_, State> {
        sched.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_current<R>(f: impl FnOnce(&Arc<Sched>, usize) -> R) -> R {
        CURRENT.with(|c| {
            let borrow = c.borrow();
            let (sched, me) = borrow
                .as_ref()
                .expect("loom primitives may only be used inside loom::model");
            f(sched, *me)
        })
    }

    /// Picks the next thread to run. `me_runnable` is whether the calling
    /// thread may itself continue (false when it just parked/finished).
    fn pick_next(st: &mut State, sched: &Sched, me: usize, me_runnable: bool) {
        let mut runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t], TState::Runnable))
            .collect();
        if runnable.is_empty() {
            // Quiescent: timed waits fire now; an untimed-only stall is a
            // deadlock.
            let timed: Vec<usize> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t], TState::Waiting { timed: true, .. }))
                .collect();
            if !timed.is_empty() {
                for t in timed {
                    st.threads[t] = TState::Runnable;
                    st.wake[t] = Wake::TimedOut;
                }
                runnable = (0..st.threads.len())
                    .filter(|&t| matches!(st.threads[t], TState::Runnable))
                    .collect();
            } else if st.threads.iter().all(|t| matches!(t, TState::Finished)) {
                st.done = true;
                sched.cv.notify_all();
                return;
            } else {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(t, s)| match s {
                        TState::BlockedLock { lock, write } => {
                            format!("thread {t}: blocked acquiring lock #{lock} (write={write})")
                        }
                        TState::Waiting { cv, .. } => {
                            format!("thread {t}: waiting on condvar #{cv} (untimed)")
                        }
                        TState::BlockedJoin { target } => {
                            format!("thread {t}: joining thread {target}")
                        }
                        TState::Finished => format!("thread {t}: finished"),
                        TState::Runnable => format!("thread {t}: runnable"),
                    })
                    .collect();
                st.failure
                    .get_or_insert_with(|| format!("deadlock:\n  {}", stuck.join("\n  ")));
                st.abort = true;
                sched.cv.notify_all();
                return;
            }
        }

        // Canonical option order: continuing the running thread is free,
        // so it comes first; any other pick while it could continue is a
        // preemption and spends budget.
        let mut options = runnable;
        if me_runnable {
            if let Some(pos) = options.iter().position(|&t| t == me) {
                options.remove(pos);
                options.insert(0, me);
            }
            if st.preemptions >= st.bound {
                options.truncate(1);
            }
        }

        let chosen = if options.len() == 1 {
            options[0]
        } else if st.step < st.path.len() {
            let b = &st.path[st.step];
            debug_assert_eq!(b.options, options, "non-deterministic replay");
            let c = b.options[b.chosen];
            st.step += 1;
            c
        } else {
            st.path.push(Branch {
                options: options.clone(),
                chosen: 0,
                current: me_runnable.then_some(me),
            });
            st.step += 1;
            options[0]
        };

        if me_runnable && chosen != me {
            st.preemptions += 1;
        }
        st.active = chosen;
        sched.cv.notify_all();
    }

    /// Parks the calling thread until it is the active runnable thread.
    fn wait_my_turn<'a>(
        sched: &'a Sched,
        mut st: OsGuard<'a, State>,
        me: usize,
    ) -> OsGuard<'a, State> {
        loop {
            if st.abort {
                drop(st);
                panic_any(AbortToken);
            }
            if st.active == me && matches!(st.threads[me], TState::Runnable) {
                return st;
            }
            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling point *before* the caller's next visible operation.
    pub(crate) fn yield_point(op: &'static str) {
        if std::thread::panicking() {
            return;
        }
        with_current(|sched, me| {
            let mut st = lock_state(sched);
            if st.abort {
                drop(st);
                panic_any(AbortToken);
            }
            push_trace(&mut st, me, op);
            pick_next(&mut st, sched, me, true);
            let _st = wait_my_turn(sched, st, me);
        });
    }

    fn push_trace(st: &mut State, me: usize, op: &'static str) {
        if st.trace.len() >= 512 {
            st.trace.remove(0);
        }
        st.trace.push((me, op));
    }

    /// Records a cost-free value decision with `n` options at the current
    /// point in the path and returns the option taken on this execution.
    /// `current: None` marks the branch as free for the preemption
    /// accounting, so every option is explored regardless of the bound.
    fn decide_locked(st: &mut State, n: usize) -> usize {
        if st.step < st.path.len() {
            let b = &st.path[st.step];
            debug_assert_eq!(b.options.len(), n, "non-deterministic replay");
            let c = b.options[b.chosen];
            st.step += 1;
            c
        } else {
            st.path.push(Branch {
                options: (0..n).collect(),
                chosen: 0,
                current: None,
            });
            st.step += 1;
            0
        }
    }

    /// Commits every delayed store of thread `me` to shared memory, in
    /// buffer (program) order. Called at release points.
    fn flush_buffer(st: &mut State, me: usize) {
        let entries = std::mem::take(&mut st.buffers[me]);
        for (cell, v) in entries {
            cell.store(v, Ordering::SeqCst);
        }
    }

    /// Atomic load: forwards the newest own-buffer entry for this cell,
    /// falling back to shared memory. Acquire/SeqCst need no extra model
    /// behavior — only stores are ever delayed.
    pub(crate) fn atomic_load(cell: &Arc<StdAtomicU64>, _o: Ordering) -> u64 {
        yield_point("atomic load");
        with_current(|sched, me| {
            let st = lock_state(sched);
            if let Some((_, v)) = st.buffers[me]
                .iter()
                .rev()
                .find(|(c, _)| Arc::ptr_eq(c, cell))
            {
                return *v;
            }
            cell.load(Ordering::SeqCst)
        })
    }

    /// Atomic store. A `Relaxed` store branches (cost-free) between
    /// committing immediately and parking in the store buffer until the
    /// next release point; stronger stores flush the buffer first and
    /// commit in place.
    pub(crate) fn atomic_store(cell: &Arc<StdAtomicU64>, v: u64, o: Ordering) {
        yield_point("atomic store");
        with_current(|sched, me| {
            let mut st = lock_state(sched);
            if o == Ordering::Relaxed && decide_locked(&mut st, 2) == 1 {
                // Delay: supersede any older delayed store to the same
                // cell (per-location coherence) and park the new value.
                st.buffers[me].retain(|(c, _)| !Arc::ptr_eq(c, cell));
                st.buffers[me].push((cell.clone(), v));
                push_trace(&mut st, me, "store delayed in buffer");
            } else {
                if o == Ordering::Relaxed {
                    // Commit now, but a superseded older delayed store
                    // must never surface later.
                    st.buffers[me].retain(|(c, _)| !Arc::ptr_eq(c, cell));
                } else {
                    flush_buffer(&mut st, me);
                }
                cell.store(v, Ordering::SeqCst);
            }
        });
    }

    /// Atomic read-modify-write. RMWs always see the latest value and are
    /// release points (explored as SeqCst regardless of the requested
    /// ordering — see the crate docs).
    pub(crate) fn atomic_rmw(
        cell: &Arc<StdAtomicU64>,
        op: &'static str,
        f: impl Fn(u64) -> u64,
    ) -> u64 {
        yield_point(op);
        with_current(|sched, me| {
            let mut st = lock_state(sched);
            flush_buffer(&mut st, me);
            let prev = cell.load(Ordering::SeqCst);
            cell.store(f(prev), Ordering::SeqCst);
            prev
        })
    }

    /// Cooperatively acquires a model lock (`write` = exclusive).
    pub(crate) fn lock_acquire(id: usize, write: bool, op: &'static str) {
        loop {
            yield_point(op);
            let granted = with_current(|sched, me| {
                let mut st = lock_state(sched);
                let l = st.locks.entry(id).or_default();
                let free = match write {
                    true => l.writer.is_none() && l.readers == 0,
                    false => l.writer.is_none(),
                };
                if free {
                    if write {
                        l.writer = Some(me);
                    } else {
                        l.readers += 1;
                    }
                    return true;
                }
                st.threads[me] = TState::BlockedLock { lock: id, write };
                pick_next(&mut st, sched, me, false);
                let _st = wait_my_turn(sched, st, me);
                false
            });
            if granted {
                return;
            }
        }
    }

    /// Releases a model lock, making blocked acquirers runnable again.
    pub(crate) fn lock_release(id: usize, write: bool) {
        let unwinding = std::thread::panicking();
        CURRENT.with(|c| {
            let borrow = c.borrow();
            let Some((sched, me)) = borrow.as_ref() else {
                return; // dropped outside a model: nothing to release
            };
            let (sched, me) = (sched.clone(), *me);
            drop(borrow);
            let mut st = lock_state(&sched);
            // Unlocking is a release point: delayed stores become visible
            // to whoever acquires the lock next.
            flush_buffer(&mut st, me);
            if let Some(l) = st.locks.get_mut(&id) {
                if write {
                    l.writer = None;
                } else {
                    l.readers = l.readers.saturating_sub(1);
                }
            }
            for t in 0..st.threads.len() {
                if matches!(st.threads[t], TState::BlockedLock { lock, .. } if lock == id) {
                    st.threads[t] = TState::Runnable;
                    st.wake[t] = Wake::None;
                }
            }
            push_trace(&mut st, me, "unlock");
            if unwinding || st.abort {
                // Unwinding guards must not reschedule (a second panic in
                // a Drop would abort the process); hand progress to
                // whoever is already waiting and bail.
                st.abort = true;
                sched.cv.notify_all();
                return;
            }
            pick_next(&mut st, &sched, me, true);
            let _st = wait_my_turn(&sched, st, me);
        });
    }

    /// Parks in a condvar wait, releasing (model-level) the paired mutex.
    /// Returns whether the wake was a timeout.
    pub(crate) fn cv_wait(cv: usize, mutex: usize, timed: bool) -> bool {
        yield_point(if timed { "wait_for" } else { "wait" });
        let timed_out = with_current(|sched, me| {
            let mut st = lock_state(sched);
            // The wait releases the paired mutex: a release point.
            flush_buffer(&mut st, me);
            if let Some(l) = st.locks.get_mut(&mutex) {
                l.writer = None;
            }
            for t in 0..st.threads.len() {
                if matches!(st.threads[t], TState::BlockedLock { lock, .. } if lock == mutex) {
                    st.threads[t] = TState::Runnable;
                }
            }
            st.threads[me] = TState::Waiting { cv, timed };
            st.wake[me] = Wake::None;
            pick_next(&mut st, sched, me, false);
            let st = wait_my_turn(sched, st, me);
            st.wake[me] == Wake::TimedOut
        });
        // Re-acquire the paired mutex before returning to the caller.
        lock_acquire(mutex, true, "relock");
        timed_out
    }

    /// Wakes waiters of a condvar (all, or the lowest-id one).
    pub(crate) fn cv_notify(cv: usize, all: bool) {
        yield_point(if all { "notify_all" } else { "notify_one" });
        with_current(|sched, me| {
            let mut st = lock_state(sched);
            for t in 0..st.threads.len() {
                if matches!(st.threads[t], TState::Waiting { cv: c, .. } if c == cv) {
                    st.threads[t] = TState::Runnable;
                    st.wake[t] = Wake::Notified;
                    if !all {
                        break;
                    }
                }
            }
            push_trace(&mut st, me, "woke waiters");
        });
    }

    /// Registers and launches a model thread; returns its model id and the
    /// real join handle.
    pub(crate) fn spawn_thread<F, T>(f: F) -> (usize, std::thread::JoinHandle<T>)
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, id) = with_current(|sched, me| {
            let mut st = lock_state(sched);
            // Spawning releases the parent's writes to the child.
            flush_buffer(&mut st, me);
            let id = st.threads.len();
            st.threads.push(TState::Runnable);
            st.wake.push(Wake::None);
            st.buffers.push(Vec::new());
            (sched.clone(), id)
        });
        let handle = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || thread_main(sched, id, f))
            .expect("spawn model thread");
        yield_point("spawn");
        (id, handle)
    }

    /// Cooperatively joins a model thread.
    pub(crate) fn join_thread(target: usize) {
        yield_point("join");
        with_current(|sched, me| {
            let mut st = lock_state(sched);
            if matches!(st.threads[target], TState::Finished) {
                return;
            }
            st.threads[me] = TState::BlockedJoin { target };
            pick_next(&mut st, sched, me, false);
            let _st = wait_my_turn(sched, st, me);
        });
    }

    /// Body of every model thread: wait to be scheduled, run, finish.
    fn thread_main<F, T>(sched: Arc<Sched>, me: usize, f: F) -> T
    where
        F: FnOnce() -> T,
    {
        CURRENT.with(|c| *c.borrow_mut() = Some((sched.clone(), me)));
        {
            let st = lock_state(&sched);
            let _st = wait_my_turn(&sched, st, me);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let v = f();
            // A thread exiting with delayed stores still pending must let
            // others observe the pre-flush window (a real thread can be
            // preempted between its last store and anything after it);
            // without this point the exit flush below would make the
            // buffered stores visible atomically with the last operation.
            let dirty = with_current(|sched, me| !lock_state(sched).buffers[me].is_empty());
            if dirty {
                yield_point("exit with store buffer pending");
            }
            v
        }));
        CURRENT.with(|c| *c.borrow_mut() = None);
        match result {
            Ok(v) => {
                let mut st = lock_state(&sched);
                // Thread exit is a release point: joiners see everything.
                flush_buffer(&mut st, me);
                st.threads[me] = TState::Finished;
                for t in 0..st.threads.len() {
                    if matches!(st.threads[t], TState::BlockedJoin { target } if target == me) {
                        st.threads[t] = TState::Runnable;
                    }
                }
                push_trace(&mut st, me, "finished");
                if !st.abort {
                    pick_next(&mut st, &sched, me, false);
                }
                v
            }
            Err(payload) => {
                let mut st = lock_state(&sched);
                st.threads[me] = TState::Finished;
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    st.failure.get_or_insert(msg);
                }
                st.abort = true;
                sched.cv.notify_all();
                drop(st);
                panic_any(AbortToken)
            }
        }
    }

    fn env_usize(name: &str, default: usize) -> usize {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// The preemption cost of taking `options[j]` at this branch.
    fn cost(b: &Branch, j: usize) -> usize {
        match b.current {
            Some(c) if b.options[j] != c => 1,
            _ => 0,
        }
    }

    /// Advances the decision path to the next unexplored schedule within
    /// the preemption bound. Returns false when the space is exhausted.
    fn advance(path: &mut Vec<Branch>, bound: usize) -> bool {
        let mut pre = vec![0usize; path.len() + 1];
        for (i, b) in path.iter().enumerate() {
            pre[i + 1] = pre[i] + cost(b, b.chosen);
        }
        for i in (0..path.len()).rev() {
            for j in (path[i].chosen + 1)..path[i].options.len() {
                if pre[i] + cost(&path[i], j) <= bound {
                    path[i].chosen = j;
                    path.truncate(i + 1);
                    return true;
                }
            }
        }
        false
    }

    /// Installs (once, process-wide) a panic hook that silences the
    /// sentinel unwinds model threads use to exit aborted executions.
    fn install_hook() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<AbortToken>().is_none() {
                    prev(info);
                }
            }));
        });
    }

    pub(crate) fn run_model(f: Arc<dyn Fn() + Send + Sync>) {
        install_hook();
        let bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
        let max_iters = env_usize("LOOM_MAX_ITERATIONS", 100_000);
        let mut path: Vec<Branch> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= max_iters,
                "loom: exceeded {max_iters} executions without exhausting the schedule \
                 space; raise LOOM_MAX_ITERATIONS or lower LOOM_MAX_PREEMPTIONS"
            );
            let sched = Arc::new(Sched {
                m: OsMutex::new(State {
                    threads: vec![TState::Runnable],
                    wake: vec![Wake::None],
                    active: 0,
                    locks: HashMap::new(),
                    buffers: vec![Vec::new()],
                    path: std::mem::take(&mut path),
                    step: 0,
                    preemptions: 0,
                    bound,
                    abort: false,
                    done: false,
                    failure: None,
                    trace: Vec::new(),
                }),
                cv: OsCondvar::new(),
            });
            let body = f.clone();
            let sched2 = sched.clone();
            let root = std::thread::Builder::new()
                .name("loom-0".into())
                .spawn(move || thread_main(sched2, 0, move || body()))
                .expect("spawn model root thread");
            {
                let mut st = lock_state(&sched);
                while !st.done && !st.abort {
                    st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
            }
            let _ = root.join();
            let mut st = lock_state(&sched);
            if let Some(fail) = st.failure.take() {
                let trace: Vec<String> = st
                    .trace
                    .iter()
                    .map(|(t, op)| format!("  thread {t}: {op}"))
                    .collect();
                panic!(
                    "loom: counterexample on execution {iterations}\n\
                     --- schedule (last {} ops) ---\n{}\n--- failure ---\n{fail}",
                    trace.len(),
                    trace.join("\n"),
                );
            }
            path = std::mem::take(&mut st.path);
            drop(st);
            if !advance(&mut path, bound) {
                return;
            }
        }
    }
}
