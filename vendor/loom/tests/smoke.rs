//! Sanity checks for the vendored explorer: it must *find* classic
//! interleaving bugs (otherwise a green loom run means nothing) and must
//! *pass* correct protocols without false counterexamples.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Condvar, Mutex};

#[test]
fn finds_lost_update_on_unsynchronized_counter() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let msg = match result {
        Ok(()) => panic!("explorer missed the load/store race"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(
        msg.contains("counterexample"),
        "failure must cite the schedule: {msg}"
    );
}

#[test]
fn passes_mutex_protected_counter() {
    loom::model(|| {
        let c = Arc::new(Mutex::new(0usize));
        let c2 = c.clone();
        let t = loom::thread::spawn(move || {
            *c2.lock() += 1;
        });
        *c.lock() += 1;
        t.join().unwrap();
        assert_eq!(*c.lock(), 2);
    });
}

#[test]
fn finds_deadlock_on_untimed_wait_without_notify() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let mut g = pair.0.lock();
            while !*g {
                pair.1.wait(&mut g); // nobody will ever notify
            }
        });
    }));
    let msg = match result {
        Ok(()) => panic!("explorer missed the un-notifiable wait"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .expect("counterexample report is a String"),
    };
    assert!(msg.contains("deadlock"), "must report a deadlock: {msg}");
}

#[test]
fn passes_notified_condvar_handshake() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = loom::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    });
}

#[test]
fn timed_wait_escapes_a_missed_notify() {
    // notify_all can land before the waiter parks; the timed wait must
    // then fire (at quiescence) instead of deadlocking the model.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = loom::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let _ = pair
                .1
                .wait_for(&mut g, std::time::Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    });
}
