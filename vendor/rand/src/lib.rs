//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset lsm-lab uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//! Streams are stable across runs and platforms, which is exactly what the
//! experiment harness wants from a seeded generator.

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), the standard construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo bias is ≤ span/2^64, far below what any experiment
                // here can resolve; keep the fast path branch-free.
                let r = ((rng.next_u64() as u128) % span) as i128;
                ((low as i128) + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        low + <f64 as Standard>::from_rng(rng) * (high - low)
    }
}

/// The raw entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::from_rng(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// (The real `rand` uses ChaCha12 here; the statistical quality of
    /// xoshiro256++ is ample for workload generation and its streams are
    /// reproducible, which is the property the experiments depend on.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A process-local generator seeded from the system clock; mirrors
/// `rand::thread_rng` closely enough for non-reproducible callers.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos)
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "both tails reached");
    }
}
