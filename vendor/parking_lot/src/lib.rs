//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex`, `RwLock`, and `Condvar` with parking_lot's API shape —
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and
//! `Condvar::wait_for` takes `&mut MutexGuard` — implemented over
//! `std::sync`. Poisoning is ignored, matching parking_lot semantics: a
//! panicking holder does not wedge every later acquisition.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The `Option` is only ever `None` transiently
/// inside [`Condvar::wait_for`], which moves the underlying std guard out
/// and back in around the wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait: whether the timeout elapsed before a notify.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex around the wait.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_timed_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        assert!(*done);
        t.join().expect("thread");
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot has no poisoning: the lock must still be usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
