//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so the real `bytes` crate cannot be fetched. This crate
//! provides the subset of its API that lsm-lab uses: a cheaply cloneable,
//! immutable byte buffer with zero-copy slicing, backed by `Arc<[u8]>`.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones share the underlying allocation; [`Bytes::slice`] produces views
/// into the same allocation without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared until data is stored).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Wraps a static slice (copied here; the real crate borrows it, but
    /// the observable behavior is identical for this repo's usage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin} > {end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_is_zero_copy_and_bounded() {
        let b = Bytes::copy_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        let hello = b.slice(..5);
        let world = b.slice(6..);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        assert_eq!(world.slice(1..3), Bytes::copy_from_slice(b"or"));
    }

    #[test]
    fn equality_and_ordering_follow_contents() {
        let a = Bytes::from(b"abc".to_vec());
        let b = Bytes::from_static(b"abc");
        assert_eq!(a, b);
        assert!(a < Bytes::from_static(b"abd"));
        assert!(Bytes::new().is_empty());
    }
}
