//! # lsm-lab
//!
//! A laboratory for the log-structured merge (LSM) design space.
//!
//! This crate is the umbrella for a family of crates that together implement
//! a complete, tunable LSM storage engine along with the design-space
//! instrumentation surveyed in *Dissecting, Designing, and Optimizing
//! LSM-based Data Stores* (Sarkar & Athanassoulis, SIGMOD 2022):
//!
//! * [`types`] — keys, internal entries, encodings, errors.
//! * [`storage`] — storage backends with page-level I/O accounting, the
//!   block cache, and the write-ahead log.
//! * [`memtable`] — the in-memory write buffer implementations (vector,
//!   skiplist, hash-skiplist, hash-linklist).
//! * [`filters`] — point filters (Bloom, blocked Bloom, cuckoo) and range
//!   filters (prefix Bloom, SuRF-like trie, Rosetta-like segment Blooms).
//! * [`sstable`] — the immutable sorted-run file format with fence pointers.
//! * [`compaction`] — the compaction design space: triggers, data layouts,
//!   granularity, and data-movement policies as first-class primitives.
//! * [`core`] — the engine itself: [`core::Db`].
//! * [`wisckey`] — key-value separation (value log + garbage collection).
//! * [`tuning`] — cost models, Monkey filter allocation, design navigation,
//!   and robust (Endure-style) tuning.
//! * [`workload`] — deterministic workload generators (YCSB-style).
//! * [`obs`] — observability: lock-free latency histograms, the structured
//!   event trace (JSONL / Chrome `trace_event` export), per-level gauges.
//! * [`crash_harness`] — deterministic fault-injection sweeps: crash the
//!   engine at every storage write, power-cut, reopen, verify.
//!
//! ## Quickstart
//!
//! ```
//! use lsm_lab::core::{Db, Options};
//!
//! let db = Db::builder().options(Options::default()).open().unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! db.delete(b"hello").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), None);
//! ```

pub mod crash_harness;

pub use lsm_compaction as compaction;
pub use lsm_core as core;
pub use lsm_filters as filters;
pub use lsm_memtable as memtable;
pub use lsm_obs as obs;
pub use lsm_sstable as sstable;
pub use lsm_storage as storage;
pub use lsm_tuning as tuning;
pub use lsm_types as types;
pub use lsm_wisckey as wisckey;
pub use lsm_workload as workload;
