//! Crash-recovery harness: drive the engine to a crash at every storage
//! write, power-cut the backend, reopen, and verify the acknowledged state.
//!
//! The harness encodes the durability contract the engine promises when
//! `wal_sync` is on:
//!
//! * every operation that returned `Ok` is readable after a power cut;
//! * the single operation in flight at the crash is **atomic** — after
//!   recovery its key shows either the old or the new value, never a
//!   mixture and never corruption;
//! * reopen itself never fails, whatever write the crash interrupted
//!   (WAL append, table blob, manifest install, obsolete-file cleanup,
//!   value-log roll, GC relocation, ...).
//!
//! [`crash_sweep`] walks crash points over the plain [`Db`];
//! [`kv_crash_sweep`] does the same over the WiscKey-separated store,
//! including garbage-collection crash points; [`sharded_crash_sweep`]
//! power-cuts a [`ShardedDb`] mid-epoch — one shard's backend dies while a
//! cross-shard `WriteBatch` is partially sub-committed — and asserts the
//! epoch protocol's all-or-none promise after reopen. All sweeps are
//! deterministic: one seed fixes the fault schedule *and* the workload, so
//! a failure report (layout, seed, crash op) reproduces exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_compaction::{CompactionConfig, DataLayout};
use lsm_core::{Db, Observability, Options, Partitioning, ShardedDb, WriteBatch};
use lsm_obs::ObsHandle;
use lsm_storage::{Backend, FaultBackend, MemBackend};
use lsm_types::Value;
use lsm_wisckey::KvSeparatedDb;

/// One step of the deterministic workload.
#[derive(Clone, Debug)]
pub enum WorkloadOp {
    /// Insert or overwrite a key.
    Put(Vec<u8>, Vec<u8>),
    /// Delete a key.
    Delete(Vec<u8>),
    /// Drain pending flush/compaction work.
    Maintain,
    /// Garbage-collect the oldest value-log segment (WiscKey sweep only;
    /// ignored by the plain sweep).
    Gc,
}

impl WorkloadOp {
    /// The key this operation logically touches, when it touches one.
    fn touched_key(&self) -> Option<&[u8]> {
        match self {
            WorkloadOp::Put(k, _) | WorkloadOp::Delete(k) => Some(k),
            WorkloadOp::Maintain | WorkloadOp::Gc => None,
        }
    }
}

/// What a (possibly interrupted) workload run acknowledged.
pub struct RunOutcome {
    /// Key-value state built from `Ok` operations only.
    pub model: BTreeMap<Vec<u8>, Vec<u8>>,
    /// The operation that errored (the crash victim), when one did.
    pub in_flight: Option<WorkloadOp>,
}

/// Aggregate result of one sweep, for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepReport {
    /// Storage write ops in the fault-free reference run.
    pub write_ops_total: u64,
    /// Crash points actually driven (sampled by stride).
    pub crash_points_tested: usize,
    /// Crashes that interrupted the open itself.
    pub crashes_during_open: usize,
    /// Recoveries that had to truncate a torn WAL tail.
    pub recoveries_with_torn_wal: usize,
}

/// The engine configuration the sweeps run: tiny buffers so a short
/// workload exercises flush, compaction, and obsolete-file cleanup, with
/// the synced WAL that makes `Ok` mean durable.
pub fn harness_options(layout: DataLayout) -> Options {
    Options {
        write_buffer_bytes: 2 << 10,
        table_target_bytes: 2 << 10,
        max_immutable_memtables: 2,
        compaction: CompactionConfig {
            layout,
            level1_bytes: 8 << 10,
            ..CompactionConfig::default()
        },
        block_cache_bytes: 0,
        wal: true,
        wal_sync: true,
        background_threads: 0,
        ..Options::default()
    }
}

/// The deterministic mixed workload: ~150 puts/deletes over a 48-key
/// space (so overwrites create garbage), maintenance mixed in.
pub fn standard_workload() -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    for i in 0..150u32 {
        let slot = i % 48;
        let key = format!("key{slot:03}").into_bytes();
        if i % 11 == 7 {
            ops.push(WorkloadOp::Delete(key));
        } else {
            let len = 60 + (i as usize % 5) * 20;
            ops.push(WorkloadOp::Put(key, vec![b'a' + (i % 23) as u8; len]));
        }
        if i % 23 == 19 {
            ops.push(WorkloadOp::Maintain);
        }
    }
    ops.push(WorkloadOp::Maintain);
    ops
}

/// The WiscKey workload: large (logged) and small (inline) values, with
/// GC passes that relocate live records and delete dead segments.
pub fn kv_workload() -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    for i in 0..110u32 {
        let slot = i % 36;
        let key = format!("key{slot:03}").into_bytes();
        if i % 13 == 9 {
            ops.push(WorkloadOp::Delete(key));
        } else if i % 4 == 3 {
            ops.push(WorkloadOp::Put(key, vec![b'0' + (i % 10) as u8; 8]));
        } else {
            ops.push(WorkloadOp::Put(key, vec![b'A' + (i % 26) as u8; 180]));
        }
        if i % 25 == 21 {
            ops.push(WorkloadOp::Maintain);
        }
        if i % 40 == 33 {
            ops.push(WorkloadOp::Gc);
        }
    }
    ops.push(WorkloadOp::Maintain);
    ops
}

/// Opens a durable `Db` on `backend`: manifest persisted, WAL recovered,
/// orphans cleaned — the configuration the sweeps verify.
pub fn open_durable_db(backend: Arc<dyn Backend>, opts: &Options) -> lsm_types::Result<Db> {
    Db::builder()
        .backend(backend)
        .options(opts.clone())
        .persist_manifest(true)
        .recover(true)
        .clean_orphans(true)
        .open()
}

/// [`open_durable_db`] sharing the sweep-wide observability handle, so one
/// event trace spans every crash point and reopen in a sweep.
fn open_swept_db(
    backend: Arc<dyn Backend>,
    opts: &Options,
    obs: &ObsHandle,
) -> lsm_types::Result<Db> {
    Db::builder()
        .backend(backend)
        .options(opts.clone())
        .persist_manifest(true)
        .recover(true)
        .clean_orphans(true)
        .obs(Observability::Shared(obs.clone()))
        .open()
}

/// Runs `f`; if it panics (a sweep verification failed), dumps the sweep's
/// event trace as Chrome `trace_event` JSON to a temp file — the
/// flush/compaction/recovery/fault timeline around the failing crash point,
/// viewable in `chrome://tracing` — then re-raises the panic.
fn dump_trace_on_panic<T>(obs: &ObsHandle, label: &str, f: impl FnOnce() -> T) -> T {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(payload) => {
            let path = std::env::temp_dir().join(format!(
                "lsm_crash_trace_{label}_{}.json",
                std::process::id()
            ));
            // Failure diagnostics to the host temp dir, not engine I/O:
            // the trace must outlive the panicking process and the faulted
            // in-memory backends.
            // lsm-lint: allow(fs-boundary)
            match std::fs::write(&path, obs.chrome_trace()) {
                Ok(()) => eprintln!(
                    "crash sweep failed; Chrome trace written to {} \
                     (open in chrome://tracing)",
                    path.display()
                ),
                Err(e) => eprintln!("crash sweep failed; trace dump also failed: {e}"),
            }
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `ops` until the first error; the model records only acknowledged
/// operations, and the erroring operation is reported as in-flight.
fn run_db_workload(db: &Db, ops: &[WorkloadOp]) -> RunOutcome {
    let mut model = BTreeMap::new();
    for op in ops {
        let res = match op {
            WorkloadOp::Put(k, v) => db.put(k, v),
            WorkloadOp::Delete(k) => db.delete(k),
            WorkloadOp::Maintain => db.maintain(),
            WorkloadOp::Gc => Ok(()),
        };
        if res.is_err() {
            return RunOutcome {
                model,
                in_flight: Some(op.clone()),
            };
        }
        match op {
            WorkloadOp::Put(k, v) => {
                model.insert(k.clone(), v.clone());
            }
            WorkloadOp::Delete(k) => {
                model.remove(k);
            }
            _ => {}
        }
    }
    RunOutcome {
        model,
        in_flight: None,
    }
}

fn run_kv_workload(kv: &KvSeparatedDb, ops: &[WorkloadOp]) -> RunOutcome {
    let mut model = BTreeMap::new();
    for op in ops {
        let res = match op {
            WorkloadOp::Put(k, v) => kv.put(k, v),
            WorkloadOp::Delete(k) => kv.delete(k),
            WorkloadOp::Maintain => kv.maintain(),
            WorkloadOp::Gc => kv.gc_oldest_segment().map(|_| ()),
        };
        if res.is_err() {
            return RunOutcome {
                model,
                in_flight: Some(op.clone()),
            };
        }
        match op {
            WorkloadOp::Put(k, v) => {
                model.insert(k.clone(), v.clone());
            }
            WorkloadOp::Delete(k) => {
                model.remove(k);
            }
            _ => {}
        }
    }
    RunOutcome {
        model,
        in_flight: None,
    }
}

/// Checks one recovered key against the model, honoring in-flight
/// atomicity: the crash victim's key may show old or new state, every
/// other key must match exactly.
fn check_key(
    key: &[u8],
    got: Option<&[u8]>,
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    in_flight: Option<&WorkloadOp>,
    ctx: &str,
) {
    let expected = model.get(key).map(|v| v.as_slice());
    if in_flight.and_then(|op| op.touched_key()) == Some(key) {
        // Old value, or the in-flight operation's effect.
        let new_state = match in_flight {
            Some(WorkloadOp::Put(_, v)) => Some(v.as_slice()),
            Some(WorkloadOp::Delete(_)) => None,
            _ => expected,
        };
        assert!(
            got == expected || got == new_state,
            "{ctx}: key {} must show pre- or post-crash state, got {:?} \
             (old {:?}, new {:?})",
            String::from_utf8_lossy(key),
            got.map(|v| v.len()),
            expected.map(|v| v.len()),
            new_state.map(|v| v.len()),
        );
    } else {
        assert!(
            got == expected,
            "{ctx}: key {} diverged after recovery: got {:?}, want {:?}",
            String::from_utf8_lossy(key),
            got.map(|v| v.len()),
            expected.map(|v| v.len()),
        );
    }
}

/// Verifies a recovered store against the acked model via point reads and
/// one full scan (`scanned` is the recovered store's full contents).
fn verify_recovered(
    lookup: impl Fn(&[u8]) -> Option<Value>,
    scanned: &BTreeMap<Vec<u8>, Vec<u8>>,
    outcome: &RunOutcome,
    ctx: &str,
) {
    let in_flight = outcome.in_flight.as_ref();
    let victim = in_flight.and_then(|op| op.touched_key());
    for key in outcome.model.keys() {
        let got = lookup(key);
        check_key(key, got.as_deref(), &outcome.model, in_flight, ctx);
    }
    // The in-flight key might be brand new (not in the model): it may
    // surface after recovery, but only with the in-flight value.
    if let Some(key) = victim {
        let got = lookup(key);
        check_key(key, got.as_deref(), &outcome.model, in_flight, ctx);
    }
    // The scan must agree: no extra keys, no missing keys.
    for (key, value) in scanned {
        check_key(key, Some(value), &outcome.model, in_flight, ctx);
    }
    for key in outcome.model.keys() {
        if Some(key.as_slice()) != victim {
            assert!(
                scanned.contains_key(key),
                "{ctx}: key {} missing from recovered scan",
                String::from_utf8_lossy(key),
            );
        }
    }
}

fn scan_all_db(db: &Db, ctx: &str) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut out = BTreeMap::new();
    let iter = db
        .scan(b"", None)
        .unwrap_or_else(|e| panic!("{ctx}: recovered scan failed: {e}"));
    for item in iter {
        let (k, v) = item.unwrap_or_else(|e| panic!("{ctx}: recovered scan item failed: {e}"));
        out.insert(k.0.to_vec(), v.to_vec());
    }
    out
}

/// Sweeps crash points over the plain engine for one data layout.
///
/// Phase 1 runs the workload fault-free to count storage writes and prove
/// a clean power cut is lossless. Phase 2 samples up to `max_points`
/// crash points across that range; each point gets a fresh store, a crash
/// mid-write, a power cut, a reopen, and a full verification.
pub fn crash_sweep(layout: DataLayout, label: &str, seed: u64, max_points: usize) -> SweepReport {
    let obs = ObsHandle::recording();
    dump_trace_on_panic(&obs, label, || {
        crash_sweep_obs(layout, label, seed, max_points, &obs)
    })
}

fn crash_sweep_obs(
    layout: DataLayout,
    label: &str,
    seed: u64,
    max_points: usize,
    obs: &ObsHandle,
) -> SweepReport {
    let opts = harness_options(layout);
    let ops = standard_workload();
    let mut report = SweepReport::default();

    // Phase 1: fault-free reference run, then a clean power cut.
    let fb = Arc::new(FaultBackend::with_seed(Arc::new(MemBackend::new()), seed));
    fb.set_obs(obs.clone());
    let ctx = format!("[{label} seed={seed} fault-free]");
    let db =
        open_swept_db(fb.clone(), &opts, obs).unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
    let outcome = run_db_workload(&db, &ops);
    assert!(
        outcome.in_flight.is_none(),
        "{ctx}: fault-free run must not error"
    );
    report.write_ops_total = fb.write_ops();
    drop(db);
    fb.power_cut()
        .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
    let db = open_swept_db(fb.inner(), &opts, obs)
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    let scanned = scan_all_db(&db, &ctx);
    verify_recovered(
        |k| {
            db.get(k)
                .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"))
        },
        &scanned,
        &outcome,
        &ctx,
    );
    drop(db);

    // Phase 2: crash at sampled write ops.
    assert!(report.write_ops_total > 0, "{ctx}: workload wrote nothing");
    let stride = (report.write_ops_total as usize / max_points.max(1)).max(1) as u64;
    let mut crash_op = 1;
    while crash_op <= report.write_ops_total {
        let ctx = format!("[{label} seed={seed} crash-at-op={crash_op}]");
        let fb = Arc::new(FaultBackend::with_seed(Arc::new(MemBackend::new()), seed));
        fb.set_obs(obs.clone());
        fb.crash_at_write_op(crash_op);

        let outcome = match open_swept_db(fb.clone(), &opts, obs) {
            Err(_) => {
                // The crash interrupted open itself: nothing was acked.
                assert!(fb.crashed(), "{ctx}: open error without crash");
                report.crashes_during_open += 1;
                RunOutcome {
                    model: BTreeMap::new(),
                    in_flight: None,
                }
            }
            Ok(db) => {
                let outcome = run_db_workload(&db, &ops);
                if outcome.in_flight.is_some() {
                    assert!(fb.crashed(), "{ctx}: workload error without crash");
                }
                drop(db);
                outcome
            }
        };

        fb.power_cut()
            .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
        let db = open_swept_db(fb.inner(), &opts, obs)
            .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
        if db.recovery_summary().is_some_and(|s| s.torn_segments > 0) {
            report.recoveries_with_torn_wal += 1;
        }
        let scanned = scan_all_db(&db, &ctx);
        verify_recovered(
            |k| {
                db.get(k)
                    .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"))
            },
            &scanned,
            &outcome,
            &ctx,
        );

        report.crash_points_tested += 1;
        crash_op += stride;
    }
    report
}

const KV_VALUE_THRESHOLD: usize = 32;
const KV_SEGMENT_TARGET: u64 = 2 << 10;

fn open_durable_kv(
    backend: Arc<dyn Backend>,
    opts: &Options,
    obs: &ObsHandle,
) -> lsm_types::Result<KvSeparatedDb> {
    KvSeparatedDb::open_durable_obs(
        backend,
        opts.clone(),
        KV_VALUE_THRESHOLD,
        KV_SEGMENT_TARGET,
        Observability::Shared(obs.clone()),
    )
}

fn scan_all_kv(kv: &KvSeparatedDb, ctx: &str) -> BTreeMap<Vec<u8>, Vec<u8>> {
    kv.scan(b"", None)
        .unwrap_or_else(|e| panic!("{ctx}: recovered scan failed: {e}"))
        .into_iter()
        .map(|(k, v)| (k.0.to_vec(), v.to_vec()))
        .collect()
}

/// Sweeps crash points over the WiscKey-separated store, driving value-log
/// appends, segment rolls, GC relocation, and segment deletion to a crash.
pub fn kv_crash_sweep(
    layout: DataLayout,
    label: &str,
    seed: u64,
    max_points: usize,
) -> SweepReport {
    let obs = ObsHandle::recording();
    dump_trace_on_panic(&obs, label, || {
        kv_crash_sweep_obs(layout, label, seed, max_points, &obs)
    })
}

fn kv_crash_sweep_obs(
    layout: DataLayout,
    label: &str,
    seed: u64,
    max_points: usize,
    obs: &ObsHandle,
) -> SweepReport {
    let opts = harness_options(layout);
    let ops = kv_workload();
    let mut report = SweepReport::default();

    let fb = Arc::new(FaultBackend::with_seed(Arc::new(MemBackend::new()), seed));
    fb.set_obs(obs.clone());
    let ctx = format!("[kv {label} seed={seed} fault-free]");
    let kv = open_durable_kv(fb.clone(), &opts, obs)
        .unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
    let outcome = run_kv_workload(&kv, &ops);
    assert!(
        outcome.in_flight.is_none(),
        "{ctx}: fault-free run must not error"
    );
    report.write_ops_total = fb.write_ops();
    drop(kv);
    fb.power_cut()
        .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
    let kv = open_durable_kv(fb.inner(), &opts, obs)
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    let scanned = scan_all_kv(&kv, &ctx);
    verify_recovered(
        |k| {
            kv.get(k)
                .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"))
        },
        &scanned,
        &outcome,
        &ctx,
    );
    drop(kv);

    assert!(report.write_ops_total > 0, "{ctx}: workload wrote nothing");
    let stride = (report.write_ops_total as usize / max_points.max(1)).max(1) as u64;
    let mut crash_op = 1;
    while crash_op <= report.write_ops_total {
        let ctx = format!("[kv {label} seed={seed} crash-at-op={crash_op}]");
        let fb = Arc::new(FaultBackend::with_seed(Arc::new(MemBackend::new()), seed));
        fb.set_obs(obs.clone());
        fb.crash_at_write_op(crash_op);

        let outcome = match open_durable_kv(fb.clone(), &opts, obs) {
            Err(_) => {
                assert!(fb.crashed(), "{ctx}: open error without crash");
                report.crashes_during_open += 1;
                RunOutcome {
                    model: BTreeMap::new(),
                    in_flight: None,
                }
            }
            Ok(kv) => {
                let outcome = run_kv_workload(&kv, &ops);
                if outcome.in_flight.is_some() {
                    assert!(fb.crashed(), "{ctx}: workload error without crash");
                }
                drop(kv);
                outcome
            }
        };

        fb.power_cut()
            .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
        let kv = open_durable_kv(fb.inner(), &opts, obs)
            .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
        if kv
            .db()
            .recovery_summary()
            .is_some_and(|s| s.torn_segments > 0)
        {
            report.recoveries_with_torn_wal += 1;
        }
        let scanned = scan_all_kv(&kv, &ctx);
        verify_recovered(
            |k| {
                kv.get(k)
                    .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"))
            },
            &scanned,
            &outcome,
            &ctx,
        );

        report.crash_points_tested += 1;
        crash_op += stride;
    }
    report
}

// ---------------------------------------------------------------------------
// Sharded sweep: power cuts mid-epoch across a ShardedDb.
// ---------------------------------------------------------------------------

/// Shards in the sharded sweep. Three is the smallest count where an epoch
/// can crash *between* sub-commits with another still pending.
const SHARD_COUNT: usize = 3;

/// One step of the deterministic sharded workload.
#[derive(Clone, Debug)]
pub enum ShardedOp {
    /// Insert or overwrite one key (routed to its owning shard).
    Put(Vec<u8>, Vec<u8>),
    /// Delete one key.
    Delete(Vec<u8>),
    /// An atomic multi-key batch whose keys span several shards.
    Batch(Vec<(Vec<u8>, Vec<u8>)>),
    /// Drain pending flush/compaction work on every shard.
    Maintain,
}

/// What a (possibly interrupted) sharded workload run acknowledged.
pub struct ShardedRunOutcome {
    /// Key-value state built from `Ok` operations only.
    pub model: BTreeMap<Vec<u8>, Vec<u8>>,
    /// The operation that errored (the crash victim), when one did.
    pub in_flight: Option<ShardedOp>,
}

fn pad_value(tag: &str, len: usize) -> Vec<u8> {
    let mut v = tag.as_bytes().to_vec();
    while v.len() < len {
        v.push(b'.');
    }
    v
}

/// The deterministic sharded workload: single-key traffic over three key
/// regions (`a…`, `n…`, `x…` — distinct shards under the canonical
/// `["h", "t"]` range split and scattered under hash), with cross-shard
/// `WriteBatch`es mixed in. Every value embeds its op index, so pre- and
/// post-crash states are never byte-identical and the all-or-none check
/// cannot alias an old value for a new one.
pub fn sharded_workload() -> Vec<ShardedOp> {
    let regions = [b'a', b'n', b'x'];
    let mut ops = Vec::new();
    for i in 0..120u32 {
        let slot = i % 14;
        if i % 13 == 5 {
            let region = regions[(i % 3) as usize] as char;
            ops.push(ShardedOp::Delete(format!("{region}{slot:02}").into_bytes()));
        } else if i % 5 == 3 {
            // One key per region: under range partitioning the batch is
            // guaranteed to span all three shards, so a crash inside its
            // epoch lands between sub-commits.
            let len = 40 + (i as usize % 4) * 24;
            let kvs = regions
                .iter()
                .map(|&r| {
                    let key = format!("{}{slot:02}", r as char).into_bytes();
                    (key, pad_value(&format!("b{i:03}-{}", r as char), len))
                })
                .collect();
            ops.push(ShardedOp::Batch(kvs));
        } else {
            let region = regions[(i % 3) as usize] as char;
            let len = 56 + (i as usize % 5) * 20;
            ops.push(ShardedOp::Put(
                format!("{region}{slot:02}").into_bytes(),
                pad_value(&format!("s{i:03}"), len),
            ));
        }
        if i % 29 == 17 {
            ops.push(ShardedOp::Maintain);
        }
    }
    ops.push(ShardedOp::Maintain);
    ops
}

/// The canonical range split for [`SHARD_COUNT`] shards, matching the
/// workload's three key regions.
pub fn sharded_range_partitioning() -> Partitioning {
    Partitioning::Range {
        split_points: vec![b"h".to_vec(), b"t".to_vec()],
    }
}

fn sharded_backends(seed: u64, obs: &ObsHandle) -> Vec<Arc<FaultBackend>> {
    (0..SHARD_COUNT)
        .map(|i| {
            let fb = Arc::new(FaultBackend::with_seed(
                Arc::new(MemBackend::new()),
                seed.wrapping_add(i as u64),
            ));
            fb.set_obs(obs.clone());
            fb
        })
        .collect()
}

fn as_dyn(fbs: &[Arc<FaultBackend>]) -> Vec<Arc<dyn Backend>> {
    fbs.iter()
        .map(|fb| Arc::clone(fb) as Arc<dyn Backend>)
        .collect()
}

fn inners(fbs: &[Arc<FaultBackend>]) -> Vec<Arc<dyn Backend>> {
    fbs.iter().map(|fb| fb.inner()).collect()
}

fn open_swept_sharded(
    backends: Vec<Arc<dyn Backend>>,
    partitioning: &Partitioning,
    opts: &Options,
    obs: &ObsHandle,
) -> lsm_types::Result<ShardedDb> {
    ShardedDb::builder()
        .shards(backends.len())
        .backends(backends)
        .partitioning(partitioning.clone())
        .options(opts.clone())
        .persist_manifest(true)
        .recover(true)
        .clean_orphans(true)
        .obs(Observability::Shared(obs.clone()))
        .open()
}

/// Runs `ops` until the first error; the model records only acknowledged
/// operations, and the erroring operation is reported as in-flight.
fn run_sharded_workload(db: &ShardedDb, ops: &[ShardedOp]) -> ShardedRunOutcome {
    let mut model = BTreeMap::new();
    for op in ops {
        let res = match op {
            ShardedOp::Put(k, v) => db.put(k, v),
            ShardedOp::Delete(k) => db.delete(k),
            ShardedOp::Batch(kvs) => {
                let mut wb = WriteBatch::new();
                for (k, v) in kvs {
                    wb.put(k, v);
                }
                db.write(wb)
            }
            ShardedOp::Maintain => db.maintain(),
        };
        if res.is_err() {
            return ShardedRunOutcome {
                model,
                in_flight: Some(op.clone()),
            };
        }
        match op {
            ShardedOp::Put(k, v) => {
                model.insert(k.clone(), v.clone());
            }
            ShardedOp::Delete(k) => {
                model.remove(k);
            }
            ShardedOp::Batch(kvs) => {
                for (k, v) in kvs {
                    model.insert(k.clone(), v.clone());
                }
            }
            ShardedOp::Maintain => {}
        }
    }
    ShardedRunOutcome {
        model,
        in_flight: None,
    }
}

/// Verifies a recovered sharded store: every acknowledged key reads back
/// exactly; an in-flight single-key op may show old or new state; an
/// in-flight cross-shard batch must be **all-or-none** — after recovery
/// either every key carries the batch value or none does, even though its
/// sub-commits hardened in different shards' WALs before the cut.
fn verify_recovered_sharded(db: &ShardedDb, outcome: &ShardedRunOutcome, ctx: &str) {
    let get = |k: &[u8]| {
        db.get(k)
            .unwrap_or_else(|e| panic!("{ctx}: get failed: {e}"))
    };
    // Resolve the in-flight op into one expected final map.
    let mut expected = outcome.model.clone();
    match &outcome.in_flight {
        None | Some(ShardedOp::Maintain) => {}
        Some(ShardedOp::Put(k, v)) => {
            let got = get(k);
            if got.as_deref() == Some(v.as_slice()) {
                expected.insert(k.clone(), v.clone());
            } else {
                assert_eq!(
                    got.as_deref(),
                    expected.get(k).map(|v| v.as_slice()),
                    "{ctx}: in-flight put on {} shows neither old nor new state",
                    String::from_utf8_lossy(k),
                );
            }
        }
        Some(ShardedOp::Delete(k)) => match get(k) {
            None => {
                expected.remove(k);
            }
            Some(got) => assert_eq!(
                Some(&got[..]),
                expected.get(k).map(|v| v.as_slice()),
                "{ctx}: in-flight delete on {} shows neither old nor new state",
                String::from_utf8_lossy(k),
            ),
        },
        Some(ShardedOp::Batch(kvs)) => {
            let mut applied = 0usize;
            for (k, v) in kvs {
                let got = get(k);
                if got.as_deref() == Some(v.as_slice()) {
                    applied += 1;
                } else {
                    assert_eq!(
                        got.as_deref(),
                        expected.get(k).map(|v| v.as_slice()),
                        "{ctx}: batch key {} shows neither old nor new state",
                        String::from_utf8_lossy(k),
                    );
                }
            }
            assert!(
                applied == 0 || applied == kvs.len(),
                "{ctx}: cross-shard batch recovered torn: {applied}/{} keys applied",
                kvs.len(),
            );
            if applied == kvs.len() {
                for (k, v) in kvs {
                    expected.insert(k.clone(), v.clone());
                }
            }
        }
    }
    // Every expected key point-reads back...
    for (k, v) in &expected {
        assert_eq!(
            get(k).as_deref(),
            Some(v.as_slice()),
            "{ctx}: key {} diverged after recovery",
            String::from_utf8_lossy(k),
        );
    }
    // ...and the merged cross-shard scan agrees exactly.
    let mut scanned = BTreeMap::new();
    let iter = db
        .scan(b"", None)
        .unwrap_or_else(|e| panic!("{ctx}: recovered scan failed: {e}"));
    for item in iter {
        let (k, v) = item.unwrap_or_else(|e| panic!("{ctx}: recovered scan item failed: {e}"));
        scanned.insert(k.0.to_vec(), v.to_vec());
    }
    for k in scanned.keys() {
        assert!(
            expected.contains_key(k),
            "{ctx}: unexpected key {} in recovered scan",
            String::from_utf8_lossy(k),
        );
    }
    for (k, v) in &expected {
        assert_eq!(
            scanned.get(k),
            Some(v),
            "{ctx}: key {} missing or wrong in recovered scan",
            String::from_utf8_lossy(k),
        );
    }
}

/// Sweeps crash points over a three-shard [`ShardedDb`] under the given
/// partitioning.
///
/// Phase 1 runs the workload fault-free to count each shard's storage
/// writes and prove a clean power cut of every shard is lossless. Phase 2
/// then sweeps each shard as the crash victim in turn: crashing shard 0
/// interrupts coordinator writes (the epoch-log COMMIT record among them),
/// while crashing shards 1 and 2 kills mid-epoch sub-commits after earlier
/// shards already hardened theirs. Every point power-cuts **all** shards,
/// reopens, and verifies acknowledged state plus cross-shard batch
/// all-or-none.
pub fn sharded_crash_sweep(
    partitioning: Partitioning,
    label: &str,
    seed: u64,
    max_points: usize,
) -> SweepReport {
    let obs = ObsHandle::recording();
    dump_trace_on_panic(&obs, label, || {
        sharded_crash_sweep_obs(partitioning, label, seed, max_points, &obs)
    })
}

fn sharded_crash_sweep_obs(
    partitioning: Partitioning,
    label: &str,
    seed: u64,
    max_points: usize,
    obs: &ObsHandle,
) -> SweepReport {
    let opts = harness_options(DataLayout::Leveling);
    let ops = sharded_workload();
    let mut report = SweepReport::default();

    // Phase 1: fault-free reference run, then a clean power cut everywhere.
    let fbs = sharded_backends(seed, obs);
    let ctx = format!("[sharded {label} seed={seed} fault-free]");
    let db = open_swept_sharded(as_dyn(&fbs), &partitioning, &opts, obs)
        .unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
    let outcome = run_sharded_workload(&db, &ops);
    assert!(
        outcome.in_flight.is_none(),
        "{ctx}: fault-free run must not error"
    );
    let per_shard_ops: Vec<u64> = fbs.iter().map(|fb| fb.write_ops()).collect();
    report.write_ops_total = per_shard_ops.iter().sum();
    drop(db);
    for fb in &fbs {
        fb.power_cut()
            .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
    }
    let db = open_swept_sharded(inners(&fbs), &partitioning, &opts, obs)
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    verify_recovered_sharded(&db, &outcome, &ctx);
    drop(db);

    // Phase 2: sweep each shard as the crash victim over its own write-op
    // range. The workload and fault schedules are deterministic, so each
    // point replays phase 1 exactly until the victim dies.
    assert!(report.write_ops_total > 0, "{ctx}: workload wrote nothing");
    let per_shard_points = (max_points / SHARD_COUNT).max(1);
    for (victim, &total) in per_shard_ops.iter().enumerate() {
        assert!(total > 0, "{ctx}: shard {victim} never wrote");
        let stride = (total as usize / per_shard_points).max(1) as u64;
        let mut crash_op = 1;
        while crash_op <= total {
            let ctx = format!(
                "[sharded {label} seed={seed} victim-shard={victim} crash-at-op={crash_op}]"
            );
            let fbs = sharded_backends(seed, obs);
            fbs[victim].crash_at_write_op(crash_op);

            let outcome = match open_swept_sharded(as_dyn(&fbs), &partitioning, &opts, obs) {
                Err(_) => {
                    // The crash interrupted open itself: nothing was acked.
                    assert!(fbs[victim].crashed(), "{ctx}: open error without crash");
                    report.crashes_during_open += 1;
                    ShardedRunOutcome {
                        model: BTreeMap::new(),
                        in_flight: None,
                    }
                }
                Ok(db) => {
                    let outcome = run_sharded_workload(&db, &ops);
                    if outcome.in_flight.is_some() {
                        assert!(fbs[victim].crashed(), "{ctx}: workload error without crash");
                    }
                    drop(db);
                    outcome
                }
            };

            for fb in &fbs {
                fb.power_cut()
                    .unwrap_or_else(|e| panic!("{ctx}: power cut failed: {e}"));
            }
            let db = open_swept_sharded(inners(&fbs), &partitioning, &opts, obs)
                .unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
            if (0..db.num_shards()).any(|s| {
                db.shard(s)
                    .recovery_summary()
                    .is_some_and(|r| r.torn_segments > 0)
            }) {
                report.recoveries_with_torn_wal += 1;
            }
            verify_recovered_sharded(&db, &outcome, &ctx);
            drop(db);

            report.crash_points_tested += 1;
            crash_op += stride;
        }
    }
    report
}
