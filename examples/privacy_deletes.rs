//! Privacy through timely deletion (tutorial §2.3.3, Lethe).
//!
//! GDPR-style regulation demands that deleted data be *physically* gone
//! within a deadline. A stock LSM only purges a tombstoned value when
//! compaction happens to reach it — potentially never for cold key ranges.
//! This example deletes a user's records under two engines and reports how
//! long the dead bytes actually linger.
//!
//! ```text
//! cargo run --release --example privacy_deletes
//! ```

use lsm_lab::core::{Db, Options, PickPolicy, Trigger};
use lsm_lab::workload::{format_key, format_value};

fn opts(base: Options, ttl: Option<u64>) -> Options {
    let mut o = base;
    o.write_buffer_bytes = 64 << 10;
    o.table_target_bytes = 64 << 10;
    o.wal = false;
    o.compaction.level1_bytes = 256 << 10;
    if let Some(ttl) = ttl {
        o.compaction.extra_triggers = vec![Trigger::TombstoneAge(ttl)];
        o.compaction.pick = PickPolicy::ExpiredTombstones;
    }
    o
}

fn run(label: &str, ttl: Option<u64>) {
    let db = Db::builder()
        .options(opts(Options::default(), ttl))
        .open()
        .unwrap();

    // Load 20k records, then "user 7" requests erasure of their 2k records.
    for id in 0..20_000u64 {
        db.put(&format_key(id), &format_value(id, 64)).unwrap();
    }
    db.maintain().unwrap();
    for id in 0..2_000u64 {
        db.delete(&format_key(id * 10)).unwrap();
    }
    db.flush().unwrap();
    db.maintain().unwrap();

    // Unrelated traffic continues; measure how long tombstones survive.
    let mut purged_at_tick = None;
    for tick in 0..10u64 {
        for id in 0..5_000u64 {
            let k = 100_000 + tick * 5_000 + id;
            db.put(&format_key(k), &format_value(k, 64)).unwrap();
        }
        db.maintain().unwrap();
        let live: u64 = db
            .version()
            .all_tables()
            .map(|t| t.meta().tombstone_count)
            .sum();
        if live == 0 && purged_at_tick.is_none() {
            purged_at_tick = Some(tick + 1);
        }
    }

    let live: u64 = db
        .version()
        .all_tables()
        .map(|t| t.meta().tombstone_count)
        .sum();
    println!(
        "{label:<28} live tombstones after churn: {live:>5}   purged: {:>6}   fully clean after: {}",
        db.metrics().db.tombstones_purged,
        purged_at_tick
            .map(|t| format!("{t} rounds"))
            .unwrap_or_else(|| "never".into()),
    );
}

fn main() {
    println!("erasure of 2,000 records, then 10 rounds of unrelated churn:\n");
    run("saturation-only (stock LSM)", None);
    run("Lethe ttl=50k ticks", Some(50_000));
    run("Lethe ttl=10k ticks", Some(10_000));
    println!(
        "\nThe age-triggered engines drive live tombstones to zero within \
         the deadline; the stock engine leaves dead data resident until \
         (if ever) ordinary compaction reaches it."
    );
}
