//! A tuning advisor: describe your workload, get a design, open a database
//! configured with it — the Module-III navigation loop end to end.
//!
//! ```text
//! cargo run --release --example tuning_advisor -- --writes 80 --reads 15 --ranges 5
//! ```

use lsm_lab::core::{CompactionConfig, DataLayout, Db, Options};
use lsm_lab::tuning::{navigate, robust_tune, Environment, LayoutKind, Workload};

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn to_engine_layout(kind: LayoutKind, t: u64) -> DataLayout {
    match kind {
        LayoutKind::Leveling => DataLayout::Leveling,
        LayoutKind::Tiering => DataLayout::Tiering {
            runs_per_level: t as usize,
        },
        LayoutKind::LazyLeveling => DataLayout::LazyLeveling {
            runs_per_level: t as usize,
        },
    }
}

fn main() {
    let writes = arg("--writes", 50.0);
    let reads = arg("--reads", 40.0);
    let ranges = arg("--ranges", 10.0);
    let rho = arg("--rho", 0.2);

    let workload = Workload {
        writes,
        empty_lookups: reads * 0.2,
        lookups: reads * 0.8,
        ranges,
        range_selectivity: 1e-4,
    }
    .normalize();
    let env = Environment::example();

    println!("workload: {workload:#?}\n");

    let nominal = navigate(&env, &workload);
    println!("nominal design (optimal at the expected workload):");
    println!(
        "  layout={:?} T={} bits/key={:.1} buffer={} KiB cost={:.3} IO/op\n",
        nominal.layout,
        nominal.size_ratio,
        nominal.bits_per_key,
        nominal.buffer_bytes >> 10,
        nominal.cost
    );

    let robust = robust_tune(&env, &workload, rho);
    println!("robust design (min-max over an L1 ball of radius {rho}):");
    println!(
        "  layout={:?} T={} | worst case {:.3} vs nominal's worst {:.3} IO/op\n",
        robust.robust.layout,
        robust.robust.size_ratio,
        robust.robust_worst_case,
        robust.nominal_worst_case
    );

    // Open an engine configured with the nominal recommendation and smoke
    // test it.
    let opts = Options {
        // scale the recommended buffer down to the demo's data volume
        write_buffer_bytes: (nominal.buffer_bytes as usize / 64).clamp(64 << 10, 1 << 20),
        filter_bits_per_key: nominal.bits_per_key,
        monkey_filters: true,
        wal: false,
        compaction: CompactionConfig {
            size_ratio: nominal.size_ratio,
            level1_bytes: 1 << 20,
            layout: to_engine_layout(nominal.layout, nominal.size_ratio),
            ..CompactionConfig::default()
        },
        ..Options::default()
    };
    let db = Db::builder()
        .options(opts)
        .open()
        .expect("open with recommended options");
    for i in 0..20_000u64 {
        db.put(format!("key{i:08}").as_bytes(), &[b'v'; 64])
            .unwrap();
    }
    db.maintain().unwrap();
    println!(
        "opened a database with the recommendation; after 20k inserts: \
         write-amp {:.2}, {} runs, {} levels",
        db.metrics().db.write_amplification(),
        db.version().run_count(),
        db.version().levels.len()
    );
}
