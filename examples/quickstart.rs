//! Quickstart: open a database, write, read, scan, delete, inspect.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsm_lab::core::{Db, Options};

fn main() -> lsm_lab::types::Result<()> {
    // An in-memory database with default tuning (hybrid layout: tiered L0,
    // leveled below; skiplist memtable; Bloom filters at 10 bits/key).
    let db = Db::builder().options(Options::default()).open()?;

    // Point writes and reads.
    db.put(b"user:1:name", b"ada")?;
    db.put(b"user:1:email", b"ada@example.com")?;
    db.put(b"user:2:name", b"grace")?;
    assert_eq!(db.get(b"user:1:name")?.as_deref(), Some(&b"ada"[..]));

    // Out-of-place update: the newer version wins.
    db.put(b"user:1:name", b"ada lovelace")?;
    assert_eq!(
        db.get(b"user:1:name")?.as_deref(),
        Some(&b"ada lovelace"[..])
    );

    // Range scan over one user's attributes.
    println!("user:1 attributes:");
    for item in db.scan(b"user:1:", Some(b"user:1;"))? {
        let (k, v) = item?;
        println!(
            "  {} = {}",
            String::from_utf8_lossy(k.as_bytes()),
            String::from_utf8_lossy(&v)
        );
    }

    // Deletes are tombstones applied lazily; reads see them immediately.
    db.delete(b"user:2:name")?;
    assert_eq!(db.get(b"user:2:name")?, None);

    // Range deletes cover whole intervals with one entry.
    db.put(b"tmp:a", b"1")?;
    db.put(b"tmp:b", b"2")?;
    db.delete_range(b"tmp:", b"tmp;")?;
    assert_eq!(db.get(b"tmp:a")?, None);

    // Snapshots pin a consistent view.
    let snap = db.snapshot();
    db.put(b"user:1:name", b"changed-later")?;
    assert_eq!(
        snap.get(b"user:1:name")?.as_deref(),
        Some(&b"ada lovelace"[..])
    );

    // Force maintenance and look at the tree.
    db.flush()?;
    db.maintain()?;
    let v = db.version();
    println!(
        "\ntree: {} levels, {} runs, {} bytes; stats: {:?}",
        v.levels.len(),
        v.run_count(),
        v.total_bytes(),
        db.metrics().db
    );
    Ok(())
}
