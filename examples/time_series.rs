//! A time-series ingestion scenario (the motivation of tutorial §1:
//! ingest-dominated applications like InfluxDB's TSM engine).
//!
//! Timestamps make keys arrive in sorted order, which is the LSM's best
//! case: flushed runs never overlap, so compaction moves them without
//! merging. The example ingests metrics, then serves "last hour" window
//! scans and point reads, comparing a tiered vs leveled tuning.
//!
//! ```text
//! cargo run --release --example time_series
//! ```

use std::sync::Arc;
use std::time::Instant;

use lsm_lab::core::{CompactionConfig, DataLayout, Db, Options};
use lsm_lab::storage::{Backend, MemBackend};

/// Key: `metric_id (2 B) | timestamp (8 B, big-endian)` — series-major.
fn key(metric: u16, ts: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(10);
    k.extend_from_slice(&metric.to_be_bytes());
    k.extend_from_slice(&ts.to_be_bytes());
    k
}

fn opts(layout: DataLayout) -> Options {
    Options {
        write_buffer_bytes: 256 << 10,
        table_target_bytes: 256 << 10,
        wal: false,
        compaction: CompactionConfig {
            size_ratio: 4,
            level1_bytes: 1 << 20,
            layout,
            ..CompactionConfig::default()
        },
        ..Options::default()
    }
}

fn main() {
    let metrics: u16 = 16;
    let points_per_metric: u64 = 20_000;

    for (name, layout) in [
        (
            "tiering (ingest-tuned)",
            DataLayout::Tiering { runs_per_level: 4 },
        ),
        ("leveling (query-tuned)", DataLayout::Leveling),
    ] {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let db = Db::builder()
            .backend(backend)
            .options(opts(layout))
            .open()
            .unwrap();

        // Ingest: round-robin across series, timestamps increasing.
        let start = Instant::now();
        for ts in 0..points_per_metric {
            for m in 0..metrics {
                let value = ((ts as f64 * 0.1).sin() * 1000.0) as i64;
                db.put(&key(m, ts), &value.to_le_bytes()).unwrap();
            }
        }
        db.maintain().unwrap();
        let ingest_secs = start.elapsed().as_secs_f64();
        let total_points = metrics as u64 * points_per_metric;

        // Window queries: the most recent 1,000 points of each series.
        let before = db.metrics();
        let start = Instant::now();
        let mut returned = 0usize;
        for m in 0..metrics {
            let lo = key(m, points_per_metric - 1_000);
            let hi = key(m, points_per_metric);
            returned += db.scan(&lo, Some(&hi)).unwrap().count();
        }
        let scan_secs = start.elapsed().as_secs_f64();
        let io = db.metrics().delta(&before).io;

        println!("{name}:");
        println!(
            "  ingest : {:>8.1} kpoints/s  write-amp {:.2}",
            total_points as f64 / ingest_secs / 1000.0,
            db.metrics().write_amplification()
        );
        println!(
            "  windows: {:>8.1} kpoints/s  ({} points, {:.2} read IO/point)",
            returned as f64 / scan_secs / 1000.0,
            returned,
            io.read_ops as f64 / returned.max(1) as f64
        );
        println!(
            "  tree   : {} levels, {} runs\n",
            db.version().levels.len(),
            db.version().run_count()
        );
    }
    println!(
        "Sequential keys keep write-amp low in both tunings (non-overlapping \
         runs); tiering ingests faster, leveling answers windows with fewer \
         read I/Os — the §2.2.2 tradeoff in a time-series costume."
    );
}
