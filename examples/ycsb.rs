//! Run the YCSB core workloads against the engine and report throughput
//! and I/O per operation for two contrasting tunings.
//!
//! ```text
//! cargo run --release --example ycsb [-- --n 50000 --ops 100000]
//! ```

use std::sync::Arc;
use std::time::Instant;

use lsm_lab::core::{CompactionConfig, DataLayout, Db, Options};
use lsm_lab::storage::{Backend, MemBackend};
use lsm_lab::workload::ycsb::YcsbWorkload;
use lsm_lab::workload::{format_key, format_value, Op};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn tuned(layout: DataLayout) -> Options {
    Options {
        write_buffer_bytes: 256 << 10,
        table_target_bytes: 256 << 10,
        wal: false,
        block_cache_bytes: 4 << 20,
        compaction: CompactionConfig {
            size_ratio: 4,
            level1_bytes: 1 << 20,
            layout,
            ..CompactionConfig::default()
        },
        ..Options::default()
    }
}

fn main() {
    let n = arg("--n", 50_000);
    let ops = arg("--ops", 100_000);

    println!("YCSB on lsm-lab: {n} preloaded keys, {ops} ops per workload\n");
    println!(
        "{:<8} {:<14} {:>12} {:>12} {:>10}",
        "preset", "tuning", "kops/s", "IO/op", "write-amp"
    );

    for preset in YcsbWorkload::ALL {
        for (tuning_name, layout) in [
            ("leveling", DataLayout::Leveling),
            ("tiering", DataLayout::Tiering { runs_per_level: 4 }),
        ] {
            let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
            let db = Db::builder()
                .backend(backend)
                .options(tuned(layout.clone()))
                .open()
                .expect("open");

            // preload
            for id in 0..n {
                db.put(&format_key(id), &format_value(id, 100)).unwrap();
            }
            db.maintain().unwrap();

            let mut gen = preset.generator(n, 100, 7);
            let before = db.metrics();
            let start = Instant::now();
            for _ in 0..ops {
                match gen.next_op() {
                    Op::Put(k, v) => db.put(&k, &v).unwrap(),
                    Op::Get(k) | Op::GetAbsent(k) => {
                        db.get(&k).unwrap();
                    }
                    Op::Scan(a, b) => {
                        let _ = db.scan(&a, Some(&b)).unwrap().count();
                    }
                    Op::Delete(k) => db.delete(&k).unwrap(),
                }
            }
            db.maintain().unwrap();
            let secs = start.elapsed().as_secs_f64();
            let m = db.metrics().delta(&before);
            let io = m.io;

            println!(
                "{:<8} {:<14} {:>12.1} {:>12.3} {:>10.2}",
                preset.name(),
                tuning_name,
                ops as f64 / secs / 1000.0,
                (io.read_ops + io.write_ops) as f64 / ops as f64,
                db.metrics().write_amplification(),
            );
        }
    }
    println!(
        "\nReading the table: update-heavy presets (A, F) favor tiering \
         (lower write-amp); read and scan presets (B, C, E) favor leveling \
         (fewer runs per lookup)."
    );
}
